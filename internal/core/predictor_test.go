package core

import (
	"testing"
	"testing/quick"
)

func newPred(t *testing.T, cfg Config) *Predictor {
	t.Helper()
	p, err := NewPredictor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.TableBits != 12 || cfg.NumTables != 3 || cfg.CounterMax != 3 {
		t.Errorf("table defaults wrong: %+v", cfg)
	}
	if cfg.HistoryBits != 16 || cfg.ShiftPerAccess != 4 || cfg.PCBitsPerAccess != 3 {
		t.Errorf("history defaults wrong: %+v", cfg)
	}
	if cfg.DeadThreshold != 2 || cfg.BypassThreshold != 3 || cfg.BTBDeadThreshold != 3 {
		t.Errorf("threshold defaults wrong: %+v", cfg)
	}
	if cfg.Aggregation != MajorityVote {
		t.Error("default aggregation must be majority vote")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{TableBits: 30},
		{NumTables: 9},
		{CounterMax: 300},
		{HistoryBits: 20},
		{ShiftPerAccess: 17},
		{PCBitsPerAccess: 4}, // no zero bit under default shift 4
		{DeadThreshold: 5},
		{DeadThreshold: 3, BypassThreshold: 2}, // bypass below dead
		{BTBDeadThreshold: 9},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d (%+v) validated, want error", i, cfg)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestAggregationString(t *testing.T) {
	if MajorityVote.String() != "majority" || Summation.String() != "sum" {
		t.Error("Aggregation names wrong")
	}
}

func TestIndicesDistinctHashes(t *testing.T) {
	p := newPred(t, Config{})
	// Across many signatures the three tables must disagree on index
	// placement most of the time — that is what "skewed" means.
	same := 0
	const n = 4096
	for s := 0; s < n; s++ {
		idx := p.Indices(uint16(s))
		if idx[0] == idx[1] && idx[1] == idx[2] {
			same++
		}
		for _, i := range idx {
			if i >= 1<<12 {
				t.Fatalf("index %d out of 12-bit range", i)
			}
		}
	}
	if same > n/100 {
		t.Errorf("%d/%d signatures hit identical indices in all tables", same, n)
	}
}

func TestIndicesDeterministic(t *testing.T) {
	p := newPred(t, Config{})
	f := func(sig uint16) bool {
		a, b := p.Indices(sig), p.Indices(sig)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrainAndPredictMajority(t *testing.T) {
	p := newPred(t, Config{})
	sig := uint16(0x1234)
	if p.Predict(sig, 2) {
		t.Error("untrained predictor voted dead")
	}
	p.Train(sig, true)
	p.Train(sig, true) // counters now 2 in all three tables
	if !p.Predict(sig, 2) {
		t.Error("trained predictor did not vote dead at threshold 2")
	}
	if p.Predict(sig, 3) {
		t.Error("counters at 2 must not clear threshold 3")
	}
	p.Train(sig, false)
	if p.Predict(sig, 2) {
		t.Error("live training did not pull counters below threshold")
	}
}

func TestCountersSaturate(t *testing.T) {
	p := newPred(t, Config{})
	sig := uint16(0x77)
	for i := 0; i < 100; i++ {
		p.Train(sig, true)
	}
	for _, c := range p.Counters(sig) {
		if c != 3 {
			t.Errorf("counter %d, want saturated 3", c)
		}
	}
	for i := 0; i < 100; i++ {
		p.Train(sig, false)
	}
	for _, c := range p.Counters(sig) {
		if c != 0 {
			t.Errorf("counter %d, want floor 0", c)
		}
	}
}

func TestMajorityToleratesSingleTableAliasing(t *testing.T) {
	p := newPred(t, Config{})
	victim := uint16(0x0001) // signature we never train dead
	// Find a signature that aliases with victim in exactly one table.
	vIdx := p.Indices(victim)
	var alias uint16
	found := false
	for s := 2; s < 1<<16; s++ {
		idx := p.Indices(uint16(s))
		shared := 0
		for t := range idx {
			if idx[t] == vIdx[t] {
				shared++
			}
		}
		if shared == 1 {
			alias = uint16(s)
			found = true
			break
		}
	}
	if !found {
		t.Skip("no single-table alias found")
	}
	for i := 0; i < 10; i++ {
		p.Train(alias, true)
	}
	if p.Predict(victim, 2) {
		t.Error("majority vote failed to tolerate aliasing in a single table")
	}
}

func TestSummationAggregation(t *testing.T) {
	p := newPred(t, Config{Aggregation: Summation})
	sig := uint16(0x2222)
	p.Train(sig, true)
	p.Train(sig, true) // sum = 6 = 3 tables x threshold 2
	if !p.Predict(sig, 2) {
		t.Error("summation: sum 6 must clear 3x2")
	}
	if p.Predict(sig, 3) {
		t.Error("summation: sum 6 must not clear 3x3")
	}
}

func TestSingleTableConfig(t *testing.T) {
	p := newPred(t, Config{NumTables: 1})
	sig := uint16(0x99)
	p.Train(sig, true)
	p.Train(sig, true)
	if !p.Predict(sig, 2) {
		t.Error("single-table predictor did not predict dead")
	}
}

func TestPredictorStats(t *testing.T) {
	p := newPred(t, Config{})
	p.Predict(1, 2)
	p.Train(1, true)
	p.Train(1, true)
	p.Predict(1, 2)
	p.Train(1, false)
	st := p.Stats()
	if st.LivePredictions != 1 || st.DeadPredictions != 1 {
		t.Errorf("prediction stats %+v", st)
	}
	if st.DeadTrainings != 2 || st.LiveTrainings != 1 {
		t.Errorf("training stats %+v", st)
	}
	p.Reset()
	if p.Stats() != (PredictorStats{}) {
		t.Error("Reset left stats")
	}
	if p.Predict(1, 2) {
		t.Error("Reset left counters")
	}
}

func TestStorageTable1(t *testing.T) {
	// 64KB 8-way I-cache with 64B blocks = 1024 blocks (§IV Table I).
	s := Config{}.StorageFor(1024)
	if s.MetaBitsPerBlock != 21 {
		t.Errorf("metadata bits/block = %d, want 21 (3 LRU + valid + 16 sig + pred)", s.MetaBitsPerBlock)
	}
	if s.TablesTotalBits != 3*4096*2 {
		t.Errorf("table bits = %d, want 24576", s.TablesTotalBits)
	}
	if s.MetaTotalBits != 1024*21 {
		t.Errorf("metadata bits = %d, want %d", s.MetaTotalBits, 1024*21)
	}
	kb := s.KB()
	if kb < 5.0 || kb > 6.0 {
		t.Errorf("total storage %.2f KB, want ~5.6KB (paper reports ~5KB-scale overhead)", kb)
	}
}
