package core

import "ghrpsim/internal/cache"

// blockMeta is GHRP's per-block metadata: the signature recorded at the
// block's most recent access, the dead prediction bit, and (for BTB
// coupling) the block number it describes.
type blockMeta struct {
	block  uint64
	sig    uint16
	dead   bool
	valid  bool
	reused bool // hit at least once during this residency
}

// ICachePolicy is GHRP as a cache.Policy for the instruction cache
// (Algorithm 1). It owns per-block metadata and drives the shared
// Predictor and History; the BTB adapter consults it through
// BlockPrediction.
type ICachePolicy struct {
	cfg        Config
	pred       *Predictor
	hist       *History
	ways       int
	sets       int
	meta       []blockMeta
	last       []uint64 // per-frame recency timestamps (3-bit LRU equivalent)
	now        uint64
	bypassTick uint64 // counts predicted bypasses for the escape
	// Memoized recencyCutoff result. Victim and the default OnEvict
	// training gate both need the set's median recency for the same
	// eviction, with no touch() possible in between; caching the
	// Victim-time sort halves the per-eviction sorting work. The cache is
	// valid only while (set, now) both match — any access in between
	// bumps now and invalidates it.
	cutSet int
	cutNow uint64
	cutVal uint64
	// stats
	deadEvictions uint64 // victims chosen by dead prediction
	lruEvictions  uint64 // victims chosen by LRU fallback
}

// NewICachePolicy builds a GHRP replacement policy with its own predictor
// and history.
func NewICachePolicy(cfg Config) (*ICachePolicy, error) {
	pred, err := NewPredictor(cfg)
	if err != nil {
		return nil, err
	}
	return &ICachePolicy{cfg: pred.Config(), pred: pred, hist: NewHistory(cfg)}, nil
}

// Predictor exposes the shared prediction tables (used by the BTB
// adapter and by diagnostics).
func (p *ICachePolicy) Predictor() *Predictor { return p.pred }

// History exposes the shared path history registers.
func (p *ICachePolicy) History() *History { return p.hist }

// Name implements cache.Policy.
func (p *ICachePolicy) Name() string { return "GHRP" }

// Attach implements cache.Policy.
func (p *ICachePolicy) Attach(sets, ways int) {
	p.sets, p.ways = sets, ways
	p.meta = make([]blockMeta, sets*ways)
	p.last = make([]uint64, sets*ways)
	p.now = 0
}

func (p *ICachePolicy) touch(set, way int) {
	p.now++
	p.last[set*p.ways+way] = p.now
}

func (p *ICachePolicy) lru(set int) int {
	base := set * p.ways
	best, bestAt := 0, p.last[base]
	for w := 1; w < p.ways; w++ {
		if at := p.last[base+w]; at < bestAt {
			best, bestAt = w, at
		}
	}
	return best
}

// OnHit implements cache.Policy (Algorithm 1, hit path): the old
// signature is trained live, then replaced by the signature for the
// current history, and the prediction bit refreshed.
func (p *ICachePolicy) OnHit(a cache.Access, way int) {
	m := &p.meta[a.Set*p.ways+way]
	if m.valid {
		p.pred.Train(m.sig, false)
	}
	sig := p.hist.Signature(a.PC)
	m.block = a.Block
	m.sig = sig
	m.dead = p.pred.Predict(sig, p.cfg.DeadThreshold)
	m.valid = true
	m.reused = true
	p.touch(a.Set, way)
	p.hist.Update(a.PC)
}

// Victim implements cache.Policy (Algorithm 5): prefer a predicted-dead
// block — the least recently used one when several are predicted dead,
// so a just-inserted block is never sacrificed while an older dead block
// exists — otherwise evict the LRU block. When every block is predicted
// dead this degenerates exactly to LRU, so GHRP's worst case is the
// baseline. Bypass is decided first with the higher bypass threshold.
func (p *ICachePolicy) Victim(a cache.Access) (int, bool) {
	if p.MayBypass(a) {
		return 0, true
	}
	base := a.Set * p.ways
	// Only blocks in the LRU half of the recency stack are eligible as
	// dead victims: evicting a just-used block on a stale prediction
	// destroys burst reuse, and a genuinely dead block ages into the
	// LRU half almost immediately anyway.
	cut := p.recencyCutoff(a.Set)
	deadWay, deadAt := -1, ^uint64(0)
	for w := 0; w < p.ways; w++ {
		if p.meta[base+w].valid && p.meta[base+w].dead &&
			p.last[base+w] <= cut && p.last[base+w] < deadAt {
			deadWay, deadAt = w, p.last[base+w]
		}
	}
	if deadWay >= 0 {
		p.deadEvictions++
		return deadWay, false
	}
	p.lruEvictions++
	return p.lru(a.Set), false
}

// recencyCutoff returns the timestamp of the median-recency block in the
// set: blocks at or below it are in the LRU half of the stack. The
// result is memoized per (set, now) so the Victim choice and the
// OnEvict training gate of one eviction share a single sort.
func (p *ICachePolicy) recencyCutoff(set int) uint64 {
	if p.cutNow == p.now && p.cutSet == set && p.now != 0 {
		return p.cutVal
	}
	base := set * p.ways
	var ts [16]uint64
	n := p.ways
	if n > len(ts) {
		n = len(ts)
	}
	copy(ts[:n], p.last[base:base+n])
	// Insertion sort; associativity is small.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	p.cutSet, p.cutNow, p.cutVal = set, p.now, ts[(n-1)/2]
	return p.cutVal
}

// MayBypass implements cache.Policy: the incoming block is bypassed when
// the tables vote above the bypass threshold for the current signature.
// One in 2^BypassEscapeShift predicted bypasses is inserted anyway so
// that a stuck-dead signature can be re-observed and retrained.
func (p *ICachePolicy) MayBypass(a cache.Access) bool {
	if p.cfg.DisableBypass {
		return false
	}
	if !p.pred.PredictUnanimous(p.hist.Signature(a.PC), p.cfg.BypassThreshold) {
		return false
	}
	if p.cfg.BypassEscapeShift >= 0 {
		p.bypassTick++
		if p.bypassTick&(1<<p.cfg.BypassEscapeShift-1) == 0 {
			return false
		}
	}
	return true
}

// OnBypass implements cache.Policy. Per §III-D, a bypassed miss performs
// no further table or metadata updates; only the history advances.
func (p *ICachePolicy) OnBypass(a cache.Access) {
	p.hist.Update(a.PC)
}

// OnEvict implements cache.Policy (Algorithm 6): the victim's recorded
// signature led to a dead block, so its counters are incremented. By
// default the increment applies only to unbiased death evidence: the
// block saw no reuse this generation AND it occupied the LRU position,
// i.e. the eviction would have happened under the baseline policy too.
// Without the LRU gate the predictor trains on its own premature
// evictions, which feeds back into more dead predictions and can
// spiral; gating on the LRU position keeps the training distribution
// fixed regardless of what the policy itself does.
// Config.TrainAllEvictions restores the literal Algorithm 6 for the
// ablation.
func (p *ICachePolicy) OnEvict(a cache.Access, way int, evicted uint64) {
	m := &p.meta[a.Set*p.ways+way]
	if !m.valid {
		return
	}
	train := false
	switch p.cfg.DeadTraining {
	case TrainAllEvictions:
		train = true
	case TrainLRUOnly:
		train = way == p.lru(a.Set)
	case TrainZeroReuseLRU:
		train = !m.reused && way == p.lru(a.Set)
	default: // TrainLRUHalf
		train = p.last[a.Set*p.ways+way] <= p.recencyCutoff(a.Set)
	}
	if train {
		p.pred.Train(m.sig, true)
	}
}

// OnInsert implements cache.Policy: record the new block's signature and
// initial prediction bit (Algorithm 1, lines 18-20).
func (p *ICachePolicy) OnInsert(a cache.Access, way int) {
	sig := p.hist.Signature(a.PC)
	m := &p.meta[a.Set*p.ways+way]
	m.block = a.Block
	m.sig = sig
	m.dead = p.pred.Predict(sig, p.cfg.DeadThreshold)
	m.valid = true
	m.reused = false
	p.touch(a.Set, way)
	p.hist.Update(a.PC)
}

// Reset implements cache.Policy.
func (p *ICachePolicy) Reset() {
	for i := range p.meta {
		p.meta[i] = blockMeta{}
	}
	for i := range p.last {
		p.last[i] = 0
	}
	p.now = 0
	p.pred.Reset()
	p.hist.Reset()
	p.bypassTick = 0
	p.deadEvictions = 0
	p.lruEvictions = 0
	p.cutSet, p.cutNow, p.cutVal = 0, 0, 0
}

// BlockPrediction looks up the I-cache metadata for the cache block
// containing a branch and re-evaluates its recorded signature against
// threshold. ok is false when the block is not resident, in which case
// the BTB falls back to LRU behavior for that entry (§III-E).
func (p *ICachePolicy) BlockPrediction(block uint64, threshold int) (dead, ok bool) {
	if p.sets == 0 {
		return false, false
	}
	set := int(block & uint64(p.sets-1))
	base := set * p.ways
	for w := 0; w < p.ways; w++ {
		m := &p.meta[base+w]
		if m.valid && m.block == block {
			return p.pred.Predict(m.sig, threshold), true
		}
	}
	return false, false
}

// EvictionBreakdown reports how many victims were chosen by dead-block
// prediction versus LRU fallback.
func (p *ICachePolicy) EvictionBreakdown() (deadChosen, lruChosen uint64) {
	return p.deadEvictions, p.lruEvictions
}
