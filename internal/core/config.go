package core

import "fmt"

// DeadTrainingMode selects which evictions increment the dead counters.
// The literal Algorithm 6 trains on every eviction, but a predictive
// policy that trains on its own evictions can reinforce premature
// evictions; the restricted modes train only on evidence that is
// unbiased with respect to the policy's own decisions.
type DeadTrainingMode uint8

const (
	// TrainLRUHalf (default, the tuned configuration) trains dead on
	// any eviction from the LRU half of the recency stack: death
	// evidence stays unbiased with respect to the policy's own early
	// evictions, while last-reuse death learning for multi-reuse blocks
	// is preserved.
	TrainLRUHalf DeadTrainingMode = iota
	// TrainZeroReuseLRU trains dead only when the victim saw no reuse
	// this generation and occupied the exact LRU position — the most
	// conservative evidence.
	TrainZeroReuseLRU
	// TrainLRUOnly trains dead on evictions from the exact LRU position
	// regardless of reuse.
	TrainLRUOnly
	// TrainAllEvictions is the literal Algorithm 6: every eviction
	// trains dead.
	TrainAllEvictions
)

// String names the mode for reports.
func (m DeadTrainingMode) String() string {
	switch m {
	case TrainZeroReuseLRU:
		return "zero-reuse-lru"
	case TrainLRUOnly:
		return "lru-only"
	case TrainAllEvictions:
		return "all-evictions"
	default:
		return "lru-half"
	}
}

// Aggregation selects how the per-table dead votes are combined into one
// prediction.
type Aggregation uint8

const (
	// MajorityVote predicts dead when at least half of the thresholded
	// counters vote dead — GHRP's choice (§III-C), which tolerates
	// aliasing in one table without requiring a high threshold.
	MajorityVote Aggregation = iota
	// Summation adds the raw counters and compares the sum against
	// numTables x threshold, the SDBP-style aggregation the paper
	// compares against. Kept for the ablation study.
	Summation
)

// String names the aggregation for reports.
func (a Aggregation) String() string {
	if a == Summation {
		return "sum"
	}
	return "majority"
}

// Config parameterizes a GHRP predictor. The zero value selects the
// paper's configuration (three 4096-entry tables of 2-bit counters,
// 16-bit history, majority vote).
type Config struct {
	// TableBits is the log2 of each prediction table's entry count.
	// Default 12 (4,096 entries, §IV-A).
	TableBits int
	// NumTables is how many skewed tables vote. Default 3.
	NumTables int
	// CounterMax is the saturating counter maximum. Default 3 (2-bit).
	CounterMax int
	// HistoryBits is the path history register width. Default 16,
	// recording four previous accesses (§III-A).
	HistoryBits int
	// ShiftPerAccess is how far the history shifts per access. Default 4.
	ShiftPerAccess int
	// PCBitsPerAccess is how many low-order PC bits shift in. Default 3
	// (followed by one zero bit). Set to -1 for zero bits: the history
	// register then stays empty and signatures degenerate to the bare
	// PC, the PC-only ablation.
	PCBitsPerAccess int
	// DeadThreshold is the counter value at or above which a table votes
	// dead for I-cache predictions. Default 2.
	DeadThreshold int
	// BypassThreshold is the counter value at or above which a table
	// votes to bypass the incoming block. Default 3 (saturated).
	BypassThreshold int
	// BTBDeadThreshold is the BTB's dead vote threshold, tuned separately
	// from the I-cache's to minimize false dead predictions (§III-E).
	// Default 3.
	BTBDeadThreshold int
	// BypassEnabled gates the bypass optimization. Default on; the
	// DisableBypass field turns it off for ablations.
	DisableBypass bool
	// Aggregation selects majority vote (default) or summation.
	Aggregation Aggregation
	// DeadTraining selects which evictions count as death evidence; see
	// the DeadTraining constants. Part of the training tuning for
	// instruction streams; the ablation bench compares all modes.
	DeadTraining DeadTrainingMode
	// BypassEscapeShift inserts one in 2^BypassEscapeShift would-be
	// bypassed blocks anyway, so a signature that saturates dead while
	// its blocks are actually live can be re-observed and retrained.
	// Default 5 (1/32). Set to -1 to disable the escape.
	BypassEscapeShift int
}

// WithDefaults returns cfg with zero fields replaced by the paper's
// parameters.
func (c Config) WithDefaults() Config {
	if c.TableBits == 0 {
		c.TableBits = 12
	}
	if c.NumTables == 0 {
		c.NumTables = 3
	}
	if c.CounterMax == 0 {
		c.CounterMax = 3
	}
	if c.HistoryBits == 0 {
		c.HistoryBits = 16
	}
	if c.ShiftPerAccess == 0 {
		c.ShiftPerAccess = 4
	}
	if c.PCBitsPerAccess == 0 {
		c.PCBitsPerAccess = 3
	}
	if c.DeadThreshold == 0 {
		c.DeadThreshold = 2
	}
	if c.BypassThreshold == 0 {
		c.BypassThreshold = 3
	}
	if c.BTBDeadThreshold == 0 {
		c.BTBDeadThreshold = 3
	}
	if c.BypassEscapeShift == 0 {
		c.BypassEscapeShift = 5
	}
	return c
}

// Validate reports configurations that cannot be instantiated.
func (c Config) Validate() error {
	c = c.WithDefaults()
	if c.TableBits < 1 || c.TableBits > 24 {
		return fmt.Errorf("core: TableBits %d out of range [1,24]", c.TableBits)
	}
	if c.NumTables < 1 || c.NumTables > 7 {
		return fmt.Errorf("core: NumTables %d out of range [1,7]", c.NumTables)
	}
	if c.CounterMax < 1 || c.CounterMax > 255 {
		return fmt.Errorf("core: CounterMax %d out of range [1,255]", c.CounterMax)
	}
	if c.HistoryBits < 1 || c.HistoryBits > 16 {
		return fmt.Errorf("core: HistoryBits %d out of range [1,16]", c.HistoryBits)
	}
	if c.ShiftPerAccess < 1 || c.ShiftPerAccess > c.HistoryBits {
		return fmt.Errorf("core: ShiftPerAccess %d out of range [1,%d]", c.ShiftPerAccess, c.HistoryBits)
	}
	if c.PCBitsPerAccess < -1 || c.PCBitsPerAccess >= c.ShiftPerAccess {
		return fmt.Errorf("core: PCBitsPerAccess %d must leave one zero bit under ShiftPerAccess %d", c.PCBitsPerAccess, c.ShiftPerAccess)
	}
	if c.DeadThreshold < 1 || c.DeadThreshold > c.CounterMax {
		return fmt.Errorf("core: DeadThreshold %d out of range [1,%d]", c.DeadThreshold, c.CounterMax)
	}
	if c.BypassThreshold < c.DeadThreshold || c.BypassThreshold > c.CounterMax {
		return fmt.Errorf("core: BypassThreshold %d out of range [%d,%d]", c.BypassThreshold, c.DeadThreshold, c.CounterMax)
	}
	if c.BTBDeadThreshold < 1 || c.BTBDeadThreshold > c.CounterMax {
		return fmt.Errorf("core: BTBDeadThreshold %d out of range [1,%d]", c.BTBDeadThreshold, c.CounterMax)
	}
	if c.BypassEscapeShift < -1 || c.BypassEscapeShift > 20 {
		return fmt.Errorf("core: BypassEscapeShift %d out of range [-1,20]", c.BypassEscapeShift)
	}
	return nil
}

// Storage describes the SRAM cost of a GHRP deployment, for Table I.
type Storage struct {
	TableBits        int // per prediction-table entry counter bits x entries
	TablesTotalBits  int
	MetaBitsPerBlock int
	MetaTotalBits    int
	HistoryBits      int
	TotalBits        int
}

// KB returns the total storage in kilobytes (1024 bytes).
func (s Storage) KB() float64 { return float64(s.TotalBits) / 8 / 1024 }

// StorageFor computes GHRP's storage for an I-cache with the given number
// of blocks. Per-block metadata is 3 LRU stack-position bits, a valid
// bit, the signature, and a prediction bit (§III-B); the tables hold
// counters of log2(CounterMax+1) bits; two history registers (speculative
// and retired) complete the budget.
func (c Config) StorageFor(blocks int) Storage {
	c = c.WithDefaults()
	counterBits := 0
	for v := c.CounterMax; v > 0; v >>= 1 {
		counterBits++
	}
	lruBits := 3
	metaPerBlock := lruBits + 1 + c.HistoryBits + 1
	var s Storage
	s.TableBits = counterBits << c.TableBits
	s.TablesTotalBits = c.NumTables * s.TableBits
	s.MetaBitsPerBlock = metaPerBlock
	s.MetaTotalBits = blocks * metaPerBlock
	s.HistoryBits = 2 * c.HistoryBits
	s.TotalBits = s.TablesTotalBits + s.MetaTotalBits + s.HistoryBits
	return s
}
