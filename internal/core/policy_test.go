package core

import (
	"testing"

	"ghrpsim/internal/cache"
)

func newGHRPCache(t *testing.T, sets, ways int, cfg Config) (*cache.Cache, *ICachePolicy) {
	t.Helper()
	p, err := NewICachePolicy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(sets, ways, p)
	if err != nil {
		t.Fatal(err)
	}
	return c, p
}

func TestGHRPName(t *testing.T) {
	_, p := newGHRPCache(t, 2, 2, Config{})
	if p.Name() != "GHRP" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestGHRPFallsBackToLRUWhenUntrained(t *testing.T) {
	c, _ := newGHRPCache(t, 1, 2, Config{})
	c.Access(cache.Access{Block: 0, PC: 0x000})
	c.Access(cache.Access{Block: 1, PC: 0x040})
	c.Access(cache.Access{Block: 0, PC: 0x000}) // 0 is MRU
	c.Access(cache.Access{Block: 2, PC: 0x080}) // untrained: evict LRU = 1
	if c.Lookup(1) {
		t.Error("untrained GHRP did not evict the LRU block")
	}
	if !c.Lookup(0) || !c.Lookup(2) {
		t.Error("resident set wrong after LRU fallback")
	}
}

// trainDeadSignature drives a GHRP cache so that the path signature for
// accesses with pc is repeatedly observed dead (inserted, never reused,
// evicted).
func TestGHRPLearnsDeadPath(t *testing.T) {
	cfg := Config{DisableBypass: true}
	c, p := newGHRPCache(t, 1, 2, cfg)
	// Alternate: hot block 100 reused constantly via one path; cold
	// blocks inserted via a distinctive dead path and never reused.
	for i := 0; i < 200; i++ {
		c.Access(cache.Access{Block: 100, PC: 0x1000})
		c.Access(cache.Access{Block: 200 + uint64(i*2)%32, PC: 0x2004})
	}
	dead, lru := p.EvictionBreakdown()
	if dead == 0 {
		t.Errorf("GHRP never chose a predicted-dead victim (dead=%d lru=%d)", dead, lru)
	}
	// The hot block must be resident essentially always: count hits.
	st := c.Stats()
	if st.Hits < 150 {
		t.Errorf("hot block hit only %d times; GHRP failed to protect it", st.Hits)
	}
}

func TestGHRPBypassesDeadStream(t *testing.T) {
	c, _ := newGHRPCache(t, 1, 2, Config{})
	for i := 0; i < 400; i++ {
		c.Access(cache.Access{Block: 100, PC: 0x1000})
		c.Access(cache.Access{Block: 200 + uint64(i*2)%64, PC: 0x2004})
	}
	if c.Stats().Bypasses == 0 {
		t.Error("GHRP with saturated dead counters never bypassed")
	}
}

func TestGHRPBypassDisable(t *testing.T) {
	c, _ := newGHRPCache(t, 1, 2, Config{DisableBypass: true})
	for i := 0; i < 400; i++ {
		c.Access(cache.Access{Block: 100, PC: 0x1000})
		c.Access(cache.Access{Block: 200 + uint64(i*2)%64, PC: 0x2004})
	}
	if c.Stats().Bypasses != 0 {
		t.Error("DisableBypass did not disable bypass")
	}
}

func TestGHRPHitTrainsLive(t *testing.T) {
	_, p := newGHRPCache(t, 1, 2, Config{DisableBypass: true})
	// Manually drive the policy protocol: insert a block, saturate its
	// signature dead, then a hit must decrement those counters.
	a := cache.Access{Block: 5, PC: 0x40, Set: 0}
	p.OnInsert(a, 0)
	sig := p.meta[0].sig
	p.pred.Train(sig, true)
	p.pred.Train(sig, true)
	before := p.pred.Counters(sig)
	p.OnHit(a, 0)
	after := p.pred.Counters(sig)
	for i := range before {
		if after[i] != before[i]-1 {
			t.Errorf("table %d counter %d -> %d, want decrement", i, before[i], after[i])
		}
	}
}

func TestGHRPEvictTrainsDead(t *testing.T) {
	_, p := newGHRPCache(t, 1, 2, Config{DisableBypass: true, DeadTraining: TrainAllEvictions})
	a := cache.Access{Block: 5, PC: 0x40, Set: 0}
	p.OnInsert(a, 0)
	sig := p.meta[0].sig
	before := p.pred.Counters(sig)
	p.OnEvict(cache.Access{Block: 9, PC: 0x99, Set: 0}, 0, 5)
	after := p.pred.Counters(sig)
	for i := range before {
		if after[i] != before[i]+1 {
			t.Errorf("table %d counter %d -> %d, want increment", i, before[i], after[i])
		}
	}
}

func TestGHRPDeadTrainingLRUHalfGate(t *testing.T) {
	// Default mode: an eviction from the MRU half must NOT train dead;
	// an eviction from the LRU half must.
	_, p := newGHRPCache(t, 1, 4, Config{DisableBypass: true})
	pcs := []uint64{0x40, 0x80, 0xC0, 0x100}
	for w, pc := range pcs {
		p.OnInsert(cache.Access{Block: uint64(w + 1), PC: pc, Set: 0}, w)
	}
	// Way 3 is MRU: evicting it must not train.
	sig3 := p.meta[3].sig
	before := p.pred.Counters(sig3)
	p.OnEvict(cache.Access{Block: 9, Set: 0}, 3, 4)
	for i, c := range p.pred.Counters(sig3) {
		if c != before[i] {
			t.Errorf("MRU eviction trained table %d", i)
		}
	}
	// Way 0 is LRU: evicting it must train.
	sig0 := p.meta[0].sig
	before = p.pred.Counters(sig0)
	p.OnEvict(cache.Access{Block: 9, Set: 0}, 0, 1)
	for i, c := range p.pred.Counters(sig0) {
		if c != before[i]+1 {
			t.Errorf("LRU eviction did not train table %d", i)
		}
	}
}

func TestGHRPHistoryAdvancesOncePerAccess(t *testing.T) {
	_, p := newGHRPCache(t, 1, 2, Config{})
	h0 := p.History().Current()
	p.OnInsert(cache.Access{Block: 1, PC: 0x7, Set: 0}, 0)
	h1 := p.History().Current()
	if h1 == h0 {
		t.Fatal("history did not advance on insert")
	}
	p.OnHit(cache.Access{Block: 1, PC: 0x7, Set: 0}, 0)
	h2 := p.History().Current()
	if h2 == h1 {
		t.Fatal("history did not advance on hit")
	}
	p.OnBypass(cache.Access{Block: 2, PC: 0x7, Set: 0})
	if p.History().Current() == h2 {
		t.Fatal("history did not advance on bypass")
	}
}

func TestGHRPBlockPrediction(t *testing.T) {
	c, p := newGHRPCache(t, 4, 2, Config{DisableBypass: true})
	c.Access(cache.Access{Block: 5, PC: 0x140})
	dead, ok := p.BlockPrediction(5, 2)
	if !ok {
		t.Fatal("BlockPrediction did not find a resident block")
	}
	if dead {
		t.Error("untrained block predicted dead")
	}
	if _, ok := p.BlockPrediction(77, 2); ok {
		t.Error("BlockPrediction found a non-resident block")
	}
	// Unattached policy must not panic.
	raw, err := NewICachePolicy(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := raw.BlockPrediction(1, 2); ok {
		t.Error("unattached policy returned ok")
	}
}

func TestGHRPReset(t *testing.T) {
	c, p := newGHRPCache(t, 1, 2, Config{})
	for i := 0; i < 50; i++ {
		c.Access(cache.Access{Block: uint64(i % 8), PC: uint64(i * 4)})
	}
	c.Reset()
	if p.History().Current() != 0 {
		t.Error("Reset left history")
	}
	if d, l := p.EvictionBreakdown(); d != 0 || l != 0 {
		t.Error("Reset left eviction stats")
	}
	if p.pred.Stats() != (PredictorStats{}) {
		t.Error("Reset left predictor stats")
	}
	for _, m := range p.meta {
		if m.valid {
			t.Fatal("Reset left metadata")
		}
	}
}

// TestGHRPBeatsLRUOnPhasedWorkload is the package-level sanity check of
// the headline claim: on a workload whose working set exceeds the cache
// and contains one-shot dead code reached along distinctive paths, GHRP
// must beat LRU.
func TestGHRPBeatsLRUOnPhasedWorkload(t *testing.T) {
	run := func(mk func() cache.Policy) cache.Stats {
		c, err := cache.New(16, 4, mk())
		if err != nil {
			t.Fatal(err)
		}
		// Hot loop of 32 blocks (half the 64-block cache) interleaved
		// with a cold sequential stream (dead on arrival). The loop
		// blocks are reused every iteration; the stream never.
		cold := uint64(10000)
		for iter := 0; iter < 400; iter++ {
			for b := uint64(0); b < 32; b++ {
				pc := b << 6
				c.Access(cache.Access{Block: b, PC: pc})
				// Two cold blocks per hot block: pressure exceeds ways.
				c.Access(cache.Access{Block: cold, PC: 0x100000 + (cold&3)<<2})
				cold++
				c.Access(cache.Access{Block: cold, PC: 0x200000 + (cold&3)<<2})
				cold++
			}
		}
		return c.Stats()
	}
	lru := run(func() cache.Policy { return newLRUForTest() })
	ghrp := run(func() cache.Policy {
		p, err := NewICachePolicy(Config{})
		if err != nil {
			t.Fatal(err)
		}
		return p
	})
	if ghrp.Misses >= lru.Misses {
		t.Errorf("GHRP misses %d >= LRU misses %d on phased workload", ghrp.Misses, lru.Misses)
	}
}

// newLRUForTest is a tiny local LRU to avoid an import cycle with the
// policies package (which tests against core elsewhere).
type testLRU struct {
	ways int
	last []uint64
	now  uint64
}

func newLRUForTest() *testLRU { return &testLRU{} }

func (p *testLRU) Name() string { return "LRU" }
func (p *testLRU) Attach(sets, ways int) {
	p.ways = ways
	p.last = make([]uint64, sets*ways)
}
func (p *testLRU) OnHit(a cache.Access, way int) { p.now++; p.last[a.Set*p.ways+way] = p.now }
func (p *testLRU) Victim(a cache.Access) (int, bool) {
	base := a.Set * p.ways
	best, bestAt := 0, p.last[base]
	for w := 1; w < p.ways; w++ {
		if at := p.last[base+w]; at < bestAt {
			best, bestAt = w, at
		}
	}
	return best, false
}
func (p *testLRU) MayBypass(cache.Access) bool       { return false }
func (p *testLRU) OnBypass(cache.Access)             {}
func (p *testLRU) OnInsert(a cache.Access, way int)  { p.now++; p.last[a.Set*p.ways+way] = p.now }
func (p *testLRU) OnEvict(cache.Access, int, uint64) {}
func (p *testLRU) Reset()                            { p.now = 0; p.last = make([]uint64, len(p.last)) }
