package core

import (
	"testing"
	"testing/quick"
)

func TestHistoryUpdateFormula(t *testing.T) {
	h := NewHistory(Config{})
	// Algorithm 2: h = (h << 4) | (fold(pc) & 7) << 1, truncated to 16
	// bits, where fold recovers entropy from aligned addresses.
	pc1, pc2 := uint64(0b101<<2), uint64(0b111<<2)
	b1 := uint16(PCFold(pc1)&7) << 1
	b2 := uint16(PCFold(pc2)&7) << 1
	h.Update(pc1)
	if got := h.Current(); got != b1 {
		t.Errorf("after first update: %#b, want %#b", got, b1)
	}
	h.Update(pc2)
	if got := h.Current(); got != b1<<4|b2 {
		t.Errorf("after second update: %#b, want %#b", got, b1<<4|b2)
	}
	// The low bit injected per access is always zero.
	if h.Current()&1 != 0 {
		t.Error("low history bit must be zero")
	}
}

func TestPCFoldEntropyOnAlignedAddresses(t *testing.T) {
	// Sequential 64B-aligned block addresses must not fold to a
	// constant: that is the whole point of the fold.
	seen := map[uint64]bool{}
	for b := uint64(0); b < 16; b++ {
		seen[PCFold(b<<6)&7] = true
	}
	if len(seen) < 4 {
		t.Errorf("fold of sequential block addresses yields only %d distinct 3-bit values", len(seen))
	}
}

func TestHistoryRecordsFourAccesses(t *testing.T) {
	h := NewHistory(Config{})
	pcs := []uint64{1 << 2, 2 << 2, 3 << 2, 4 << 2, 5 << 2}
	for _, pc := range pcs {
		h.Update(pc)
	}
	// Only the last four accesses fit in 16 bits with a 4-bit shift: the
	// first access must have been shifted out entirely.
	want := uint16(0)
	for _, pc := range pcs[1:] {
		want = want<<4 | uint16(PCFold(pc)&7)<<1
	}
	if got := h.Current(); got != want {
		t.Errorf("history %#x, want %#x", got, want)
	}
}

func TestHistorySpeculativeRecovery(t *testing.T) {
	h := NewHistory(Config{})
	for _, pc := range []uint64{1, 2, 3} {
		h.Update(pc)
		h.Commit(pc)
	}
	sync := h.Current()
	if sync != h.Retired() {
		t.Fatal("speculative and retired histories diverged on the right path")
	}
	// Wrong-path updates pollute the speculative register only.
	h.Update(7)
	h.Update(6)
	if h.Current() == sync {
		t.Fatal("speculative history did not advance")
	}
	if h.Retired() != sync {
		t.Fatal("retired history moved without Commit")
	}
	h.Recover()
	if h.Current() != sync {
		t.Error("Recover did not restore the speculative history")
	}
}

func TestHistoryReset(t *testing.T) {
	h := NewHistory(Config{})
	h.Update(5)
	h.Commit(5)
	h.Reset()
	if h.Current() != 0 || h.Retired() != 0 {
		t.Error("Reset left state behind")
	}
}

func TestSignatureXOR(t *testing.T) {
	h := NewHistory(Config{})
	h.Update(0x1234)
	pc := uint64(0xABCD)
	want := uint16(uint64(h.Current()) ^ pc&0xFFFF)
	if got := h.Signature(pc); got != want {
		t.Errorf("Signature = %#x, want %#x", got, want)
	}
	// Zero history passes the PC through: the zero bits in the history
	// let PC bits through unmodified (§III-A).
	h2 := NewHistory(Config{})
	if got := h2.Signature(0xBEEF); got != 0xBEEF {
		t.Errorf("Signature with empty history = %#x, want 0xBEEF", got)
	}
}

func TestSignatureDistinguishesPaths(t *testing.T) {
	// Two different paths to the same PC must normally produce different
	// signatures — that is the entire point of GHRP over PC-only schemes.
	pathA := []uint64{0x100, 0x204, 0x30C}
	pathB := []uint64{0x140, 0x2C4, 0x34C}
	mk := func(path []uint64) uint16 {
		h := NewHistory(Config{})
		for _, pc := range path {
			h.Update(pc)
		}
		return h.Signature(0x4000)
	}
	if mk(pathA) == mk(pathB) {
		t.Error("distinct paths yielded identical signatures")
	}
}

func TestHistoryWidthProperty(t *testing.T) {
	// Property: the history always fits in HistoryBits and its low bit is
	// always zero after any update sequence.
	f := func(pcs []uint64) bool {
		h := NewHistory(Config{})
		for _, pc := range pcs {
			h.Update(pc)
			if h.Current()&1 != 0 {
				return false
			}
			if uint32(h.Current()) >= 1<<16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryConfigurableDepth(t *testing.T) {
	// With an 8-bit history and 4-bit shift, only two accesses fit.
	h := NewHistory(Config{HistoryBits: 8})
	for _, pc := range []uint64{1 << 2, 2 << 2, 3 << 2} {
		h.Update(pc)
	}
	want := uint16(PCFold(2<<2)&7)<<5 | uint16(PCFold(3<<2)&7)<<1
	if got := h.Current(); got != want {
		t.Errorf("8-bit history = %#x, want %#x", got, want)
	}
}
