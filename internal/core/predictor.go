package core

// Predictor is the GHRP prediction-table machinery: NumTables skewed
// tables of saturating counters indexed by distinct hashes of a
// signature, combined by majority vote (or summation, for the ablation).
// One Predictor instance serves both the I-cache policy and the BTB
// adapter — the paper's key storage insight is that the BTB reuses the
// I-cache's tables and metadata (§III-E).
type Predictor struct {
	cfg Config
	// tables holds all NumTables counter tables in one pointer-free slab,
	// table-major: table t's entry i lives at t<<TableBits | i. The flat
	// layout keeps the per-prediction loads free of slice-header chasing
	// and the slab invisible to the garbage collector's scan phase.
	tables []uint8
	mask   uint32
	// statistics
	deadPredictions uint64
	livePredictions uint64
	deadTrainings   uint64
	liveTrainings   uint64
}

// NewPredictor builds the prediction tables for cfg. It panics only on
// configurations rejected by cfg.Validate, so validate first when the
// configuration is user-supplied.
func NewPredictor(cfg Config) (*Predictor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.WithDefaults()
	p := &Predictor{cfg: cfg, mask: uint32(1)<<cfg.TableBits - 1}
	p.tables = make([]uint8, cfg.NumTables<<cfg.TableBits)
	return p, nil
}

// Config returns the predictor's (defaulted) configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Indices computes the per-table indices for a signature: NumTables
// different 12-bit hashes of the 16-bit signature (Algorithm 2,
// ComputeIndices). Each table uses its own multiplicative hash so that a
// collision in one table is unlikely to repeat in the others.
func (p *Predictor) Indices(sig uint16) []uint32 {
	idx := make([]uint32, p.cfg.NumTables)
	p.indicesInto(sig, idx)
	return idx
}

// indicesInto fills idx (len NumTables) without allocating.
func (p *Predictor) indicesInto(sig uint16, idx []uint32) {
	s := uint32(sig)
	for t := range idx {
		// Multiplicative skewing per table; the +1 keeps table 0 from
		// being the identity so low-entropy signatures still spread.
		h := s * skewMultipliers[t%len(skewMultipliers)]
		h ^= h >> p.foldShift()
		idx[t] = h & p.mask
	}
}

func (p *Predictor) foldShift() uint32 {
	// Fold the upper product bits down into the index. For 12-bit tables
	// this mixes bits 12.. into 0..11.
	return uint32(p.cfg.TableBits)
}

var skewMultipliers = [...]uint32{
	0x9E3779B1, // golden-ratio hash
	0x85EBCA77,
	0xC2B2AE3D,
	0x27D4EB2F,
	0x165667B1,
	0xD3A2646D,
	0xFD7046C5,
}

// Vote is one table's thresholded opinion plus the raw counter.
type Vote struct {
	Counter int
	Dead    bool
}

// Predict reads the counters for sig and combines them against the given
// per-table threshold. With MajorityVote aggregation the prediction is
// dead when a strict majority of tables vote dead; with Summation the
// counter sum is compared against NumTables*threshold.
func (p *Predictor) Predict(sig uint16, threshold int) bool {
	var idx [8]uint32
	ix := idx[:p.cfg.NumTables]
	p.indicesInto(sig, ix)
	tb := uint(p.cfg.TableBits)
	deadVotes, sum := 0, 0
	for t := range ix {
		c := int(p.tables[uint32(t)<<tb|ix[t]])
		sum += c
		if c >= threshold {
			deadVotes++
		}
	}
	var dead bool
	if p.cfg.Aggregation == Summation {
		dead = sum >= threshold*p.cfg.NumTables
	} else {
		dead = 2*deadVotes > p.cfg.NumTables
	}
	if dead {
		p.deadPredictions++
	} else {
		p.livePredictions++
	}
	return dead
}

// PredictUnanimous is Predict but requires every table to clear the
// threshold — the stricter vote used for bypass decisions, where a
// false positive costs a guaranteed miss.
func (p *Predictor) PredictUnanimous(sig uint16, threshold int) bool {
	var idx [8]uint32
	ix := idx[:p.cfg.NumTables]
	p.indicesInto(sig, ix)
	tb := uint(p.cfg.TableBits)
	for t := range ix {
		if int(p.tables[uint32(t)<<tb|ix[t]]) < threshold {
			p.livePredictions++
			return false
		}
	}
	p.deadPredictions++
	return true
}

// Train adjusts the counters for sig: incremented when the signature led
// to a dead block (observed at eviction), decremented when it led to
// reuse (observed at a hit) — Algorithm 6.
func (p *Predictor) Train(sig uint16, dead bool) {
	var idx [8]uint32
	ix := idx[:p.cfg.NumTables]
	p.indicesInto(sig, ix)
	if dead {
		p.deadTrainings++
	} else {
		p.liveTrainings++
	}
	tb := uint(p.cfg.TableBits)
	for t := range ix {
		off := uint32(t)<<tb | ix[t]
		c := p.tables[off]
		if dead {
			if int(c) < p.cfg.CounterMax {
				p.tables[off] = c + 1
			}
		} else if c > 0 {
			p.tables[off] = c - 1
		}
	}
}

// Counters returns the raw counters for sig, for diagnostics and tests.
func (p *Predictor) Counters(sig uint16) []int {
	var idx [8]uint32
	ix := idx[:p.cfg.NumTables]
	p.indicesInto(sig, ix)
	out := make([]int, len(ix))
	tb := uint(p.cfg.TableBits)
	for t := range ix {
		out[t] = int(p.tables[uint32(t)<<tb|ix[t]])
	}
	return out
}

// PredictorStats reports prediction and training activity.
type PredictorStats struct {
	DeadPredictions uint64
	LivePredictions uint64
	DeadTrainings   uint64
	LiveTrainings   uint64
}

// Stats returns accumulated activity counters.
func (p *Predictor) Stats() PredictorStats {
	return PredictorStats{
		DeadPredictions: p.deadPredictions,
		LivePredictions: p.livePredictions,
		DeadTrainings:   p.deadTrainings,
		LiveTrainings:   p.liveTrainings,
	}
}

// Reset clears tables and statistics.
func (p *Predictor) Reset() {
	for i := range p.tables {
		p.tables[i] = 0
	}
	p.deadPredictions = 0
	p.livePredictions = 0
	p.deadTrainings = 0
	p.liveTrainings = 0
}
