package frontend

import (
	"testing"

	"ghrpsim/internal/trace"
	"ghrpsim/internal/workload"
)

func testProfile(seed uint64) workload.Profile {
	return workload.Profile{
		Name:         "fe-test",
		Category:     trace.ShortServer,
		Seed:         seed,
		Funcs:        400,
		BlocksMin:    6,
		BlocksMax:    14,
		InstrsMin:    4,
		InstrsMax:    12,
		LoopFrac:     0.5,
		TripMin:      4,
		TripMax:      40,
		CondFrac:     0.3,
		CallFrac:     0.25,
		IndirectFrac: 0.1,
		ColdFrac:     0.2,
		ColdBias:     0.01,
		Phases:       3,
		PhaseFuncs:   160,
		InitBlocks:   40,
		ScanFrac:     0.006, // two recurring scan functions
		ScanLenMul:   60,
		ScanWeight:   0.3,
		ZipfTheta:    0.9,
		BurstMin:     1,
		BurstMax:     8,
		UtilityFrac:  0.15,
	}
}

func testRecords(t *testing.T, target uint64) []trace.Record {
	t.Helper()
	prog, err := workload.Generate(testProfile(21))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := GenerateRecords(prog, 1, target)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// smallConfig uses a small I-cache/BTB so the test workload generates
// real replacement pressure.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.ICache = ICacheConfig{SizeBytes: 8 * 1024, BlockBytes: 64, Ways: 4}
	cfg.BTB = BTBConfig{Entries: 256, Ways: 4}
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.ICache.SizeBytes = 0 },
		func(c *Config) { c.ICache.BlockBytes = 48 }, // 21 sets with 8 ways
		func(c *Config) { c.BTB.Entries = 0 },
		func(c *Config) { c.BTB.Ways = 3 }, // non-power-of-two sets
		func(c *Config) { c.InstrBytes = 3 },
		func(c *Config) { c.WarmupFraction = 1.5 },
		func(c *Config) { c.WrongPathDepth = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d validated, want error", i)
		}
	}
}

func TestICacheConfigDerived(t *testing.T) {
	c := DefaultICache()
	if c.Sets() != 128 || c.Blocks() != 1024 {
		t.Errorf("64KB/8w/64B: sets=%d blocks=%d, want 128/1024", c.Sets(), c.Blocks())
	}
	if c.String() != "64KB/8-way/64B" {
		t.Errorf("String = %q", c.String())
	}
	b := DefaultBTB()
	if b.Sets() != 1024 {
		t.Errorf("BTB sets = %d, want 1024", b.Sets())
	}
	if b.String() != "4096-entry/4-way" {
		t.Errorf("String = %q", b.String())
	}
}

func TestParsePolicy(t *testing.T) {
	for _, k := range PaperPolicies() {
		got, err := ParsePolicy(k.String())
		if err != nil || got != k {
			t.Errorf("ParsePolicy(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParsePolicy("ghrp"); err != nil {
		t.Error("case-insensitive parse failed")
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
	if len(PaperPolicies()) != 5 {
		t.Error("the paper evaluates five policies")
	}
}

func TestWarmupFor(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.WarmupFor(1000); got != 500 {
		t.Errorf("WarmupFor(1000) = %d, want 500", got)
	}
	cfg.WarmupCap = 100
	if got := cfg.WarmupFor(1000); got != 100 {
		t.Errorf("capped WarmupFor = %d, want 100", got)
	}
}

func TestEngineRunsAllPolicies(t *testing.T) {
	recs := testRecords(t, 60_000)
	for _, kind := range PaperPolicies() {
		res, err := SimulateRecords(smallConfig(), kind, recs)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Policy != kind {
			t.Errorf("%v: result policy %v", kind, res.Policy)
		}
		if res.CountedInstrs == 0 || res.CountedInstrs >= res.TotalInstructions {
			t.Errorf("%v: counted %d of %d", kind, res.CountedInstrs, res.TotalInstructions)
		}
		if res.ICache.Accesses == 0 {
			t.Errorf("%v: no I-cache accesses", kind)
		}
		if res.BTB.Accesses == 0 {
			t.Errorf("%v: no BTB accesses", kind)
		}
		if mpki := res.ICacheMPKI(); mpki < 0 || mpki > 500 {
			t.Errorf("%v: absurd I-cache MPKI %v", kind, mpki)
		}
		if res.Branch.Predictions == 0 {
			t.Errorf("%v: direction predictor idle", kind)
		}
		if acc := res.Branch.Accuracy(); acc < 0.6 {
			t.Errorf("%v: branch accuracy %.2f too low", kind, acc)
		}
	}
}

func TestEngineDeterministic(t *testing.T) {
	recs := testRecords(t, 40_000)
	a, err := SimulateRecords(smallConfig(), PolicyGHRP, recs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateRecords(smallConfig(), PolicyGHRP, recs)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same input diverged:\n%+v\n%+v", a, b)
	}
}

func TestSimulateProgramMatchesRecords(t *testing.T) {
	prog, err := workload.Generate(testProfile(21))
	if err != nil {
		t.Fatal(err)
	}
	const target = 40_000
	streamed, err := SimulateProgram(smallConfig(), PolicyLRU, prog, 1, target)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := GenerateRecords(prog, 1, target)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up derivation differs (target vs reconstructed count), so
	// compare structure-level totals.
	replayed, err := SimulateRecords(smallConfig(), PolicyLRU, recs)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Records != replayed.Records {
		t.Errorf("record counts differ: %d vs %d", streamed.Records, replayed.Records)
	}
	if streamed.TotalInstructions != replayed.TotalInstructions {
		t.Errorf("instruction counts differ: %d vs %d", streamed.TotalInstructions, replayed.TotalInstructions)
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	recs := testRecords(t, 40_000)
	cfg := smallConfig()
	warmed, err := SimulateRecords(cfg, PolicyLRU, recs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WarmupFraction = 0
	cold, err := SimulateRecords(cfg, PolicyLRU, recs)
	if err != nil {
		t.Fatal(err)
	}
	if warmed.CountedInstrs >= cold.CountedInstrs {
		t.Error("warm-up did not shrink the counted window")
	}
	if warmed.ICache.Accesses >= cold.ICache.Accesses {
		t.Error("warm-up did not exclude accesses")
	}
	// A cold start counts compulsory misses that warm-up hides.
	if cold.ICacheMPKI() < warmed.ICacheMPKI() {
		t.Logf("note: cold MPKI %.3f < warm MPKI %.3f (acceptable for looping workloads)",
			cold.ICacheMPKI(), warmed.ICacheMPKI())
	}
}

func TestGHRPHistoriesStaySyncedOnRightPath(t *testing.T) {
	recs := testRecords(t, 30_000)
	cfg := smallConfig()
	e, err := NewEngine(cfg, PolicyGHRP, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		e.Process(r)
	}
	h := e.GHRP().History()
	if h.Current() != h.Retired() {
		t.Errorf("speculative %#x != retired %#x with no wrong-path mode", h.Current(), h.Retired())
	}
}

func TestWrongPathRecovery(t *testing.T) {
	recs := testRecords(t, 30_000)
	cfg := smallConfig()
	cfg.WrongPath = WrongPathInject
	e, err := NewEngine(cfg, PolicyGHRP, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		e.Process(r)
		h := e.GHRP().History()
		if h.Current() != h.Retired() {
			t.Fatal("recovery mode left speculative history diverged after a record")
		}
	}
	if e.BranchPredictor().Stats().Mispredictions == 0 {
		t.Skip("no mispredictions; wrong-path path not exercised")
	}
}

func TestWrongPathNoRecoverDiverges(t *testing.T) {
	recs := testRecords(t, 30_000)
	cfg := smallConfig()
	cfg.WrongPath = WrongPathNoRecover
	e, err := NewEngine(cfg, PolicyGHRP, 0)
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for _, r := range recs {
		e.Process(r)
		h := e.GHRP().History()
		if h.Current() != h.Retired() {
			diverged = true
			break
		}
	}
	if e.BranchPredictor().Stats().Mispredictions == 0 {
		t.Skip("no mispredictions; cannot observe divergence")
	}
	if !diverged {
		t.Error("no-recover mode never diverged despite mispredictions")
	}
}

func TestCountInstructions(t *testing.T) {
	recs := testRecords(t, 20_000)
	n, err := CountInstructions(recs, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	// The executor's count and the fetch reconstruction differ slightly
	// (dispatcher overhead approximation), but must agree within 5%.
	if n < 19_000 || n > 21_000 {
		t.Errorf("counted %d instructions, want ~20000", n)
	}
	if _, err := CountInstructions(recs, 0, 64); err == nil {
		t.Error("zero instr size accepted")
	}
}

func TestEngineRejectsBadInputs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ICache.SizeBytes = -5
	if _, err := NewEngine(cfg, PolicyLRU, 0); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewEngine(DefaultConfig(), numPolicies, 0); err == nil {
		t.Error("invalid policy kind accepted")
	}
}

// TestGHRPBeatsLRUEndToEnd is the end-to-end shape check at engine
// level: on a pressured I-cache, GHRP must produce fewer misses than
// LRU, and Random must produce more.
func TestGHRPBeatsLRUEndToEnd(t *testing.T) {
	recs := testRecords(t, 300_000)
	cfg := smallConfig()
	run := func(kind PolicyKind) Result {
		res, err := SimulateRecords(cfg, kind, recs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lru := run(PolicyLRU)
	ghrp := run(PolicyGHRP)
	random := run(PolicyRandom)
	if lru.ICacheMPKI() <= 0.05 {
		t.Fatalf("workload generates no I-cache pressure (LRU MPKI %.3f)", lru.ICacheMPKI())
	}
	if ghrp.ICacheMPKI() >= lru.ICacheMPKI() {
		t.Errorf("GHRP MPKI %.3f >= LRU MPKI %.3f", ghrp.ICacheMPKI(), lru.ICacheMPKI())
	}
	if random.ICacheMPKI() <= lru.ICacheMPKI()*0.9 {
		t.Errorf("Random MPKI %.3f unexpectedly below LRU %.3f", random.ICacheMPKI(), lru.ICacheMPKI())
	}
}
