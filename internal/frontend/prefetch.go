package frontend

// prefetchSet tracks prefetched blocks that have not yet been demanded,
// so the next-line prefetcher can score its usefulness. Only the Useful
// statistic depends on this set; simulation state (which blocks are in
// the cache) does not, so an approximate membership structure is safe.
type prefetchSet interface {
	// add records a freshly prefetched block.
	add(block uint64)
	// take reports whether block was recorded and removes it if so.
	take(block uint64) bool
}

// prefetchFilterSlots sizes the direct-mapped filter. The next-line
// prefetcher's reach is one block past the demand stream, so live
// entries track the set of recently missed blocks — bounded in practice
// by the I-cache's block count (1K blocks for the default 64 KB / 64 B
// configuration). 16K slots keeps conflict evictions (which can only
// under-count Useful) out of the picture for realistic code footprints
// while staying a fixed 128 KB per lane;
// TestPrefetchStatsUnchangedOnSuite pins the zero-divergence claim
// against the old unbounded map.
const prefetchFilterSlots = 1 << 14

// prefetchFilter is a fixed direct-mapped replacement for the old
// unbounded map[uint64]struct{}: O(1) with no hashing, no allocation,
// and no periodic clear. Each slot stores block+1 so the zero value
// means empty; a conflicting add simply overwrites, which at worst
// drops a Useful count for the evicted block.
type prefetchFilter struct {
	slots [prefetchFilterSlots]uint64
}

func newPrefetchFilter() *prefetchFilter { return &prefetchFilter{} }

//ghrp:hotpath
func (p *prefetchFilter) add(block uint64) {
	p.slots[block%prefetchFilterSlots] = block + 1
}

//ghrp:hotpath
func (p *prefetchFilter) take(block uint64) bool {
	i := block % prefetchFilterSlots
	if p.slots[i] == block+1 {
		p.slots[i] = 0
		return true
	}
	return false
}
