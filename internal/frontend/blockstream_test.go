package frontend

import (
	"testing"

	"ghrpsim/internal/cache"
	"ghrpsim/internal/opt"
)

func TestBlockStreamMatchesEngineAccesses(t *testing.T) {
	recs := testRecords(t, 40_000)
	cfg := DefaultConfig()
	blocks, total, err := BlockStream(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) == 0 {
		t.Fatal("empty block stream")
	}
	// The engine with no warm-up must report exactly as many I-cache
	// accesses as the stream has blocks (same coalescing rule).
	e, err := NewEngine(cfg, PolicyLRU, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(recs)
	if res.ICache.Accesses != uint64(len(blocks)) {
		t.Errorf("engine accesses %d != stream length %d", res.ICache.Accesses, len(blocks))
	}
	if res.TotalInstructions != total {
		t.Errorf("engine instructions %d != stream total %d", res.TotalInstructions, total)
	}
	// No consecutive duplicates (coalescing invariant).
	for i := 1; i < len(blocks); i++ {
		if blocks[i] == blocks[i-1] {
			t.Fatalf("consecutive duplicate block at %d", i)
		}
	}
}

func TestBlockStreamLRUEquivalence(t *testing.T) {
	// Replaying the block stream through a bare LRU cache must produce
	// exactly the engine's LRU miss count (no warm-up).
	recs := testRecords(t, 30_000)
	cfg := DefaultConfig()
	blocks, _, err := BlockStream(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(cfg, PolicyLRU, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(recs)

	lru := newBareLRU()
	c, err := cache.New(cfg.ICache.Sets(), cfg.ICache.Ways, lru)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		c.Access(cache.Access{Block: b})
	}
	if c.Stats().Misses != res.ICache.Misses {
		t.Errorf("stream misses %d != engine misses %d", c.Stats().Misses, res.ICache.Misses)
	}
}

func TestAccessIndexAt(t *testing.T) {
	recs := testRecords(t, 30_000)
	cfg := DefaultConfig()
	blocks, total, err := BlockStream(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	half, err := AccessIndexAt(recs, cfg, total/2)
	if err != nil {
		t.Fatal(err)
	}
	if half <= 0 || half >= len(blocks) {
		t.Errorf("half index %d of %d", half, len(blocks))
	}
	zero, err := AccessIndexAt(recs, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Errorf("zero warm-up index = %d", zero)
	}
	if _, err := AccessIndexAt(recs, Config{InstrBytes: 0, ICache: cfg.ICache}, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestOPTBeatsOnlinePoliciesOnEngineStream(t *testing.T) {
	// End-to-end: OPT on the reconstructed stream must not miss more
	// than the engine's LRU or GHRP.
	recs := testRecords(t, 40_000)
	cfg := DefaultConfig()
	blocks, _, err := BlockStream(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ost, err := opt.Simulate(blocks, cfg.ICache.Sets(), cfg.ICache.Ways, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []PolicyKind{PolicyLRU, PolicyGHRP} {
		e, err := NewEngine(cfg, kind, 0)
		if err != nil {
			t.Fatal(err)
		}
		res := e.Run(recs)
		if ost.Misses > res.ICache.Misses {
			t.Errorf("OPT misses %d > %v misses %d", ost.Misses, kind, res.ICache.Misses)
		}
	}
}

// bareLRU is a minimal local LRU policy for equivalence tests.
type bareLRU struct {
	ways int
	last []uint64
	now  uint64
}

func newBareLRU() *bareLRU { return &bareLRU{} }

func (p *bareLRU) Name() string { return "LRU" }
func (p *bareLRU) Attach(sets, ways int) {
	p.ways = ways
	p.last = make([]uint64, sets*ways)
}
func (p *bareLRU) OnHit(a cache.Access, way int) { p.now++; p.last[a.Set*p.ways+way] = p.now }
func (p *bareLRU) Victim(a cache.Access) (int, bool) {
	base := a.Set * p.ways
	best, bestAt := 0, p.last[base]
	for w := 1; w < p.ways; w++ {
		if at := p.last[base+w]; at < bestAt {
			best, bestAt = w, at
		}
	}
	return best, false
}
func (p *bareLRU) MayBypass(cache.Access) bool       { return false }
func (p *bareLRU) OnBypass(cache.Access)             {}
func (p *bareLRU) OnInsert(a cache.Access, way int)  { p.now++; p.last[a.Set*p.ways+way] = p.now }
func (p *bareLRU) OnEvict(cache.Access, int, uint64) {}
func (p *bareLRU) Reset()                            { p.now = 0 }

func TestExtendedPoliciesRun(t *testing.T) {
	recs := testRecords(t, 20_000)
	for _, kind := range ExtendedPolicies() {
		res, err := SimulateRecords(smallConfig(), kind, recs)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.ICache.Accesses == 0 {
			t.Errorf("%v: no accesses", kind)
		}
	}
	if len(ExtendedPolicies()) != 8 {
		t.Errorf("extended policies = %d, want 8", len(ExtendedPolicies()))
	}
}

func TestEngineAccessors(t *testing.T) {
	e, err := NewEngine(DefaultConfig(), PolicyGHRP, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.ICache() == nil || e.BTB() == nil || e.ReturnStack() == nil || e.IndirectPredictor() == nil {
		t.Error("nil accessor")
	}
	if e.Instructions() != 0 {
		t.Error("fresh engine has instructions")
	}
	r := Result{CountedInstrs: 1000}
	r.BTB.Misses = 5
	r.Branch.Mispredictions = 3
	r.Branch.Predictions = 10
	if r.BTBMPKI() != 5 {
		t.Errorf("BTBMPKI %v", r.BTBMPKI())
	}
	if r.BranchMPKI() != 3 {
		t.Errorf("BranchMPKI %v", r.BranchMPKI())
	}
}
