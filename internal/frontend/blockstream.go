package frontend

import "ghrpsim/internal/trace"

// BlockStream reconstructs the exact I-cache block access sequence the
// engine would issue for a record stream — including fetch-buffer
// coalescing — so offline analyses (Belady's OPT, reuse-distance
// profiles) see the same accesses as the online policies. It also
// returns the total instruction count.
func BlockStream(recs []trace.Record, cfg Config) ([]uint64, uint64, error) {
	f, err := trace.NewFetcher(cfg.InstrBytes, uint64(cfg.ICache.BlockBytes))
	if err != nil {
		return nil, 0, err
	}
	out := make([]uint64, 0, len(recs)*2)
	var total uint64
	var lastBlock uint64
	haveLast := false
	for _, r := range recs {
		total += f.Next(r, func(block uint64, _ int) {
			if haveLast && block == lastBlock {
				return
			}
			lastBlock, haveLast = block, true
			out = append(out, block)
		})
	}
	return out, total, nil
}

// AccessIndexAt returns the number of block accesses issued within the
// first warmupInstrs instructions of the stream — the OPT skip count
// matching the engine's warm-up rule.
func AccessIndexAt(recs []trace.Record, cfg Config, warmupInstrs uint64) (int, error) {
	f, err := trace.NewFetcher(cfg.InstrBytes, uint64(cfg.ICache.BlockBytes))
	if err != nil {
		return 0, err
	}
	var total uint64
	accesses := 0
	var lastBlock uint64
	haveLast := false
	for _, r := range recs {
		if total >= warmupInstrs {
			break
		}
		total += f.Next(r, func(block uint64, _ int) {
			if haveLast && block == lastBlock {
				return
			}
			lastBlock, haveLast = block, true
			accesses++
		})
	}
	return accesses, nil
}
