package frontend

import (
	"sync"

	"ghrpsim/internal/trace"
	"ghrpsim/internal/workload"
)

// Checkpoint-log parallel fan-out. The serial StreamProgram already
// factors a record stream into policy-independent decision chunks
// (chunk.go); here the same chunks become the communication log of a
// producer/worker pipeline. One goroutine runs the workload interpreter
// and the front — the only stateful, order-sensitive part — and
// publishes each filled chunk to every worker. Workers own disjoint
// lane subsets and replay chunks strictly in publication order, so each
// lane sees exactly the serial op sequence and results stay
// bit-identical for any worker count; TestFanOutParallelMatchesSerial
// pins that.
//
// Memory is bounded by a free list of poolChunks chunks: the producer
// blocks once all are in flight, and the last worker to finish a chunk
// returns it. Lane subsets are contiguous stripes, so a worker's lanes
// are adjacent in the lane slab.

// poolChunks bounds the chunks in flight between producer and workers.
// Two keeps the producer a full chunk ahead of the slowest worker; a
// couple more absorb scheduling jitter without growing the hot working
// set past the point of diminishing returns.
const poolChunks = 4

// StreamProgramParallel is StreamProgram with lane replay spread over
// up to workers goroutines. Worker counts of one or less (or a single
// lane) fall back to the serial path. The returned results are
// bit-identical to StreamProgram's regardless of worker count.
func (fo *FanOut) StreamProgramParallel(prog *workload.Program, seed, target uint64, workers int, opts StreamOptions) ([]Result, error) {
	if workers > len(fo.lanes) {
		workers = len(fo.lanes)
	}
	if workers <= 1 {
		return fo.StreamProgram(prog, seed, target, opts)
	}

	free := make(chan *decChunk, poolChunks)
	for i := 0; i < poolChunks; i++ {
		free <- newDecChunk()
	}
	// Per-worker queues sized to the pool, so publishing never blocks on
	// a queue: at most poolChunks chunks exist.
	queues := make([]chan *decChunk, workers)
	for w := range queues {
		queues[w] = make(chan *decChunk, poolChunks)
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + len(fo.lanes)/workers
		if w < len(fo.lanes)%workers {
			hi++
		}
		go func(lanes []lane, in chan *decChunk) {
			defer wg.Done()
			for ch := range in {
				for i := range lanes {
					lanes[i].replay(ch)
				}
				if ch.refs.Add(-1) == 0 {
					free <- ch
				}
			}
		}(fo.lanes[lo:hi], queues[w])
		lo = hi
	}

	publish := func(ch *decChunk) {
		ch.refs.Store(int32(workers))
		for _, q := range queues {
			q <- ch
		}
	}

	every := opts.ProgressEvery
	if every == 0 {
		every = DefaultProgressEvery
	}
	ch := <-free
	ch.reset()
	var n uint64
	_, err := workload.Emit(prog, seed, target, func(r trace.Record) error {
		fo.front.decide(r, &fo.front.dec)
		ch.push(&fo.front.dec)
		if ch.full() {
			publish(ch)
			ch = <-free
			ch.reset()
		}
		if opts.Progress != nil {
			n++
			if n%every == 0 {
				return opts.Progress(n, fo.front.instrs)
			}
		}
		return nil
	})
	if err == nil && !ch.empty() {
		publish(ch)
	}
	for _, q := range queues {
		close(q)
	}
	wg.Wait()
	if err != nil {
		return nil, err
	}
	return fo.Results(), nil
}

// SimulateFanOutSplit is SimulateFanOut with intra-workload
// parallelism: one interpreter/front pass feeds every policy lane, and
// lane replay is spread over up to workers goroutines. Results are
// bit-identical to SimulateFanOut's.
func SimulateFanOutSplit(cfg Config, kinds []PolicyKind, prog *workload.Program, seed, target, warmupLimit uint64, workers int, opts StreamOptions) ([]Result, error) {
	fo, err := NewFanOut(cfg, kinds, warmupLimit)
	if err != nil {
		return nil, err
	}
	return fo.StreamProgramParallel(prog, seed, target, workers, opts)
}
