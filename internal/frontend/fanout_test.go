package frontend

import (
	"testing"

	"ghrpsim/internal/workload"
)

// allPolicies lists every implemented policy kind, ablations included.
func allPolicies() []PolicyKind {
	kinds := make([]PolicyKind, 0, numPolicies)
	for k := PolicyKind(0); k < numPolicies; k++ {
		kinds = append(kinds, k)
	}
	return kinds
}

func fanOutProgram(t *testing.T) *workload.Program {
	t.Helper()
	prog, err := workload.Generate(testProfile(21))
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestFanOutMatchesPerPolicy is the fused path's bit-identity contract:
// for every policy, wrong-path mode, and prefetch setting, one fused
// replay must produce exactly the Result that a standalone per-policy
// replay of the same stream produces.
func TestFanOutMatchesPerPolicy(t *testing.T) {
	prog := fanOutProgram(t)
	const target = 150_000
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"inject", func(c *Config) { c.WrongPath = WrongPathInject }},
		{"norecover", func(c *Config) { c.WrongPath = WrongPathNoRecover }},
		{"off", func(c *Config) { c.WrongPath = WrongPathOff }},
		{"prefetch", func(c *Config) { c.NextLinePrefetch = true }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			cfg := smallConfig()
			v.mutate(&cfg)
			total, _, err := CountProgram(cfg, prog, 1, target, StreamOptions{})
			if err != nil {
				t.Fatal(err)
			}
			warm := cfg.WarmupFor(total)
			kinds := allPolicies()
			fused, err := SimulateFanOut(cfg, kinds, prog, 1, target, warm, StreamOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(fused) != len(kinds) {
				t.Fatalf("fused results: got %d, want %d", len(fused), len(kinds))
			}
			for i, kind := range kinds {
				solo, err := SimulateProgramStream(cfg, kind, prog, 1, target, warm, StreamOptions{})
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				if fused[i] != solo {
					t.Errorf("%v: fused result diverges from per-policy replay:\n fused: %+v\n  solo: %+v",
						kind, fused[i], solo)
				}
			}
		})
	}
}

// TestFanOutDuplicateKinds checks that duplicate lanes are independent
// and identical: two GHRP lanes in one fan-out must match each other and
// the standalone engine.
func TestFanOutDuplicateKinds(t *testing.T) {
	prog := fanOutProgram(t)
	cfg := smallConfig()
	const target = 80_000
	total, _, err := CountProgram(cfg, prog, 1, target, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm := cfg.WarmupFor(total)
	fused, err := SimulateFanOut(cfg, []PolicyKind{PolicyGHRP, PolicyLRU, PolicyGHRP}, prog, 1, target, warm, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fused[0] != fused[2] {
		t.Errorf("duplicate GHRP lanes diverge:\n lane0: %+v\n lane2: %+v", fused[0], fused[2])
	}
	solo, err := SimulateProgramStream(cfg, PolicyGHRP, prog, 1, target, warm, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fused[0] != solo {
		t.Errorf("fused GHRP diverges from standalone engine:\n fused: %+v\n  solo: %+v", fused[0], solo)
	}
}

// TestFanOutRejectsBadInputs covers the constructor's error paths.
func TestFanOutRejectsBadInputs(t *testing.T) {
	cfg := smallConfig()
	if _, err := NewFanOut(cfg, nil, 0); err == nil {
		t.Error("empty kinds accepted")
	}
	if _, err := NewFanOut(cfg, []PolicyKind{numPolicies}, 0); err == nil {
		t.Error("invalid kind accepted")
	}
	bad := cfg
	bad.ICache.SizeBytes = 0
	if _, err := NewFanOut(bad, []PolicyKind{PolicyLRU}, 0); err == nil {
		t.Error("invalid config accepted")
	}
}
