package frontend

import "testing"

func TestRASBasicPushPop(t *testing.T) {
	r := NewRAS(8)
	r.Push(0x100)
	r.Push(0x200)
	if tgt, ok := r.Pop(0x200); !ok || tgt != 0x200 {
		t.Errorf("Pop = (%#x, %v), want (0x200, true)", tgt, ok)
	}
	if tgt, ok := r.Pop(0x100); !ok || tgt != 0x100 {
		t.Errorf("Pop = (%#x, %v), want (0x100, true)", tgt, ok)
	}
	st := r.Stats()
	if st.Pushes != 2 || st.Pops != 2 || st.Correct != 2 || st.Mispredicts != 0 {
		t.Errorf("stats %+v", st)
	}
	if st.Accuracy() != 1 {
		t.Errorf("accuracy %v", st.Accuracy())
	}
}

func TestRASUnderflow(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(0x100); ok {
		t.Error("empty stack predicted correctly")
	}
	st := r.Stats()
	if st.Underflows != 1 || st.Mispredicts != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestRASOverflowWrapsAround(t *testing.T) {
	r := NewRAS(2)
	r.Push(0x100)
	r.Push(0x200)
	r.Push(0x300) // overwrites 0x100
	if r.Stats().Overflows != 1 {
		t.Errorf("overflows = %d", r.Stats().Overflows)
	}
	if tgt, ok := r.Pop(0x300); !ok || tgt != 0x300 {
		t.Errorf("Pop = (%#x, %v)", tgt, ok)
	}
	if tgt, ok := r.Pop(0x200); !ok || tgt != 0x200 {
		t.Errorf("Pop = (%#x, %v)", tgt, ok)
	}
	// The overwritten 0x100 is gone: next pop underflows.
	if _, ok := r.Pop(0x100); ok {
		t.Error("popped an overwritten entry")
	}
}

func TestRASMispredict(t *testing.T) {
	r := NewRAS(4)
	r.Push(0x100)
	if _, ok := r.Pop(0x999); ok {
		t.Error("wrong target scored correct")
	}
	if r.Stats().Mispredicts != 1 {
		t.Errorf("stats %+v", r.Stats())
	}
}

func TestRASResets(t *testing.T) {
	r := NewRAS(4)
	r.Push(0x100)
	r.ResetStats()
	if r.Stats().Pushes != 0 {
		t.Error("ResetStats did not clear")
	}
	// Contents survive ResetStats.
	if tgt, ok := r.Pop(0x100); !ok || tgt != 0x100 {
		t.Errorf("contents lost: (%#x, %v)", tgt, ok)
	}
	r.Push(0x200)
	r.Reset()
	if _, ok := r.Pop(0x200); ok {
		t.Error("Reset left contents")
	}
}

func TestRASZeroCapacityClamped(t *testing.T) {
	r := NewRAS(0)
	r.Push(0x100)
	if tgt, ok := r.Pop(0x100); !ok || tgt != 0x100 {
		t.Errorf("clamped RAS broken: (%#x, %v)", tgt, ok)
	}
}

func TestEngineRASAccuracyOnCleanTrace(t *testing.T) {
	// Synthetic traces have perfectly matched calls/returns up to task
	// caps and the depth limit, so RAS accuracy must be high.
	recs := testRecords(t, 60_000)
	e, err := NewEngine(DefaultConfig(), PolicyLRU, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Run(recs)
	if res.RAS.Pops == 0 {
		t.Fatal("no returns processed")
	}
	if acc := res.RAS.Accuracy(); acc < 0.95 {
		t.Errorf("RAS accuracy %.3f, want >= 0.95", acc)
	}
	if res.Indirect.Predictions == 0 {
		t.Error("no indirect predictions despite indirect dispatch")
	}
}
