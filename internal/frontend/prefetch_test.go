package frontend

import (
	"math/rand"
	"testing"

	"ghrpsim/internal/workload"
)

// mapPrefetchSet is the exact map-based pending set the engine used
// before the direct-mapped filter, kept as a test oracle: unbounded
// membership with the old periodic clear.
type mapPrefetchSet struct {
	m map[uint64]struct{}
}

func newMapPrefetchSet() *mapPrefetchSet {
	return &mapPrefetchSet{m: make(map[uint64]struct{}, 1024)}
}

func (p *mapPrefetchSet) add(block uint64) {
	if len(p.m) > 1<<16 {
		clear(p.m)
	}
	p.m[block] = struct{}{}
}

func (p *mapPrefetchSet) take(block uint64) bool {
	if _, ok := p.m[block]; ok {
		delete(p.m, block)
		return true
	}
	return false
}

// TestPrefetchFilterBasics exercises the direct-mapped filter directly:
// add/take round trips, emptiness, and conflict overwrite.
func TestPrefetchFilterBasics(t *testing.T) {
	f := newPrefetchFilter()
	if f.take(7) {
		t.Fatal("take on empty filter reported a hit")
	}
	f.add(7)
	if !f.take(7) {
		t.Fatal("added block not found")
	}
	if f.take(7) {
		t.Fatal("take did not remove the block")
	}
	// Conflicting blocks map to the same slot; the newer one wins.
	f.add(3)
	f.add(3 + prefetchFilterSlots)
	if f.take(3) {
		t.Fatal("evicted block still reported present")
	}
	if !f.take(3 + prefetchFilterSlots) {
		t.Fatal("conflicting add lost the newer block")
	}
	// Block 0 must be representable despite 0 marking an empty slot.
	f.add(0)
	if !f.take(0) {
		t.Fatal("block 0 not representable")
	}
}

// TestPrefetchStatsUnchangedOnSuite pins the direct-mapped filter to the
// old map semantics on the seed suite: with next-line prefetching on,
// every workload must produce a bit-identical Result (PrefetchStats
// included) whether the pending set is the filter or the map oracle.
// Simulation state never depends on the pending set, so any divergence
// would be confined to PrefetchStats.Useful — this test shows there is
// none at the filter's size on real access patterns.
func TestPrefetchStatsUnchangedOnSuite(t *testing.T) {
	cfg := smallConfig()
	cfg.NextLinePrefetch = true
	const target = 200_000
	for _, spec := range workload.SuiteN(4) {
		prog, err := spec.Generate()
		if err != nil {
			t.Fatalf("%s: generate: %v", spec.Name, err)
		}
		total, _, err := CountProgram(cfg, prog, 1, target, StreamOptions{})
		if err != nil {
			t.Fatalf("%s: count: %v", spec.Name, err)
		}
		run := func(oracle bool) Result {
			e, err := NewEngine(cfg, PolicyLRU, cfg.WarmupFor(total))
			if err != nil {
				t.Fatalf("%s: engine: %v", spec.Name, err)
			}
			if oracle {
				e.lanes[0].pref = newMapPrefetchSet()
			}
			res, err := e.StreamProgram(prog, 1, target, StreamOptions{})
			if err != nil {
				t.Fatalf("%s: stream: %v", spec.Name, err)
			}
			return res
		}
		filter, oracle := run(false), run(true)
		if filter != oracle {
			t.Errorf("%s: filter result diverges from map oracle:\n filter: %+v\n oracle: %+v",
				spec.Name, filter, oracle)
		}
		if filter.Prefetch.Issued == 0 {
			t.Errorf("%s: prefetcher never issued; test exercises nothing", spec.Name)
		}
	}
}

// benchPrefetchBlocks is a shared stream of block numbers with the
// locality shape the prefetcher sees: mostly sequential runs with
// occasional jumps.
func benchPrefetchBlocks(n int) []uint64 {
	rng := rand.New(rand.NewSource(42))
	blocks := make([]uint64, n)
	b := uint64(0)
	for i := range blocks {
		if rng.Intn(16) == 0 {
			b = uint64(rng.Intn(1 << 14))
		} else {
			b++
		}
		blocks[i] = b
	}
	return blocks
}

func benchmarkPrefetchSet(b *testing.B, s prefetchSet) {
	blocks := benchPrefetchBlocks(1 << 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := blocks[i&(len(blocks)-1)]
		if !s.take(blk) {
			s.add(blk + 1)
		}
	}
}

func BenchmarkPrefetchFilter(b *testing.B) { benchmarkPrefetchSet(b, newPrefetchFilter()) }
func BenchmarkPrefetchMap(b *testing.B)    { benchmarkPrefetchSet(b, newMapPrefetchSet()) }
