package frontend

import (
	"encoding/json"
	"reflect"
	"testing"
)

// fillUnique sets every leaf field of a struct to a distinct nonzero
// value, failing the test if any field cannot be set (an unexported or
// unsupported field would silently not survive JSON, which is exactly
// the regression this test exists to catch).
func fillUnique(t *testing.T, v reflect.Value, next *uint64, path string) {
	t.Helper()
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			if !f.IsExported() {
				t.Fatalf("%s.%s is unexported and would not survive JSON serialization", path, f.Name)
			}
			fillUnique(t, v.Field(i), next, path+"."+f.Name)
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		*next++
		n := *next
		if v.OverflowUint(n) {
			n %= 1 << (8 * v.Type().Size())
		}
		v.SetUint(n)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		*next++
		v.SetInt(int64(*next))
	case reflect.Float32, reflect.Float64:
		*next++
		v.SetFloat(float64(*next) + 0.5)
	case reflect.Bool:
		v.SetBool(true)
	case reflect.String:
		*next++
		v.SetString(path)
	default:
		t.Fatalf("%s has kind %v; extend the round-trip test before adding such a field to Result", path, v.Kind())
	}
}

// The result cache persists frontend.Result as JSON, so every field —
// including any added later — must survive a marshal/unmarshal cycle
// exactly. The reflect walk fails the build-time contract early: a new
// unexported or non-numeric field shows up here before it silently
// corrupts cache entries.
func TestResultJSONRoundTrip(t *testing.T) {
	var res Result
	var next uint64
	fillUnique(t, reflect.ValueOf(&res).Elem(), &next, "Result")

	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != res {
		t.Errorf("Result did not survive a JSON round trip:\n got %+v\nwant %+v", back, res)
	}
}

// The zero value must round-trip too (cache entries for empty runs).
func TestResultZeroValueRoundTrip(t *testing.T) {
	blob, err := json.Marshal(Result{})
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != (Result{}) {
		t.Errorf("zero Result did not survive a JSON round trip: %+v", back)
	}
}
