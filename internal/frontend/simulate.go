package frontend

import (
	"ghrpsim/internal/trace"
	"ghrpsim/internal/workload"
)

// DefaultProgressEvery is how many records pass between StreamOptions
// progress callbacks when the caller leaves ProgressEvery at zero.
const DefaultProgressEvery = 1 << 16

// StreamOptions tunes a streaming replay. The zero value streams with no
// callbacks.
type StreamOptions struct {
	// Progress, when non-nil, is invoked every ProgressEvery records
	// with the records and instructions replayed so far; returning an
	// error aborts the replay with that error (this is how callers
	// implement cancellation).
	Progress func(records, instructions uint64) error
	// ProgressEvery is the record interval between Progress calls;
	// 0 means DefaultProgressEvery.
	ProgressEvery uint64
}

// CountInstructions walks a record slice with a fetch reconstructor and
// returns the total instruction count it implies.
func CountInstructions(recs []trace.Record, instrBytes, blockBytes uint64) (uint64, error) {
	f, err := trace.NewFetcher(instrBytes, blockBytes)
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, r := range recs {
		total += f.Next(r, nil)
	}
	return total, nil
}

// CountProgram streams a program's deterministic record stream through a
// fetch reconstructor without buffering it, returning the total
// instruction and record counts — the streaming equivalent of
// GenerateRecords followed by CountInstructions.
func CountProgram(cfg Config, prog *workload.Program, seed, target uint64, opts StreamOptions) (instrs, records uint64, err error) {
	f, err := trace.NewFetcher(cfg.InstrBytes, uint64(cfg.ICache.BlockBytes))
	if err != nil {
		return 0, 0, err
	}
	every := opts.ProgressEvery
	if every == 0 {
		every = DefaultProgressEvery
	}
	var total, n uint64
	_, err = workload.Emit(prog, seed, target, func(r trace.Record) error {
		total += f.Next(r, nil)
		n++
		if opts.Progress != nil && n%every == 0 {
			return opts.Progress(n, total)
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	return total, n, nil
}

// SimulateRecords runs one policy over a pre-generated record slice,
// deriving the warm-up window from the records themselves.
func SimulateRecords(cfg Config, kind PolicyKind, recs []trace.Record) (Result, error) {
	total, err := CountInstructions(recs, cfg.InstrBytes, uint64(cfg.ICache.BlockBytes))
	if err != nil {
		return Result{}, err
	}
	e, err := NewEngine(cfg, kind, cfg.WarmupFor(total))
	if err != nil {
		return Result{}, err
	}
	return e.Run(recs), nil
}

// StreamProgram re-emits a program's deterministic record stream
// straight into the engine, with no intermediate record buffer. Because
// workload.Emit is deterministic for a (program, seed, target) triple,
// repeated streams replay the identical trace the buffered
// GenerateRecords path would produce.
func (e *Engine) StreamProgram(prog *workload.Program, seed, target uint64, opts StreamOptions) (Result, error) {
	every := opts.ProgressEvery
	if every == 0 {
		every = DefaultProgressEvery
	}
	var n uint64
	_, err := workload.Emit(prog, seed, target, func(r trace.Record) error {
		e.Process(r)
		if opts.Progress != nil {
			n++
			if n%every == 0 {
				return opts.Progress(n, e.front.instrs)
			}
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return e.Result(), nil
}

// SimulateProgramStream builds an engine with an explicit warm-up limit
// and streams the program through it. Pair it with CountProgram to
// derive the warm-up from the stream's actual instruction count, which
// makes the result bit-identical to the buffered SimulateRecords path.
func SimulateProgramStream(cfg Config, kind PolicyKind, prog *workload.Program, seed, target, warmupLimit uint64, opts StreamOptions) (Result, error) {
	e, err := NewEngine(cfg, kind, warmupLimit)
	if err != nil {
		return Result{}, err
	}
	return e.StreamProgram(prog, seed, target, opts)
}

// SimulateProgram executes a synthesized program for target instructions,
// streaming records straight into a fresh engine (no intermediate record
// buffer). The warm-up window is derived from the target.
func SimulateProgram(cfg Config, kind PolicyKind, prog *workload.Program, seed, target uint64) (Result, error) {
	return SimulateProgramStream(cfg, kind, prog, seed, target, cfg.WarmupFor(target), StreamOptions{})
}

// GenerateRecords executes a program once and returns its record stream,
// so many policies can replay the identical trace.
func GenerateRecords(prog *workload.Program, seed, target uint64) ([]trace.Record, error) {
	recs := make([]trace.Record, 0, target/8)
	if _, err := workload.Emit(prog, seed, target, func(r trace.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		return nil, err
	}
	return recs, nil
}
