package frontend

import (
	"ghrpsim/internal/trace"
	"ghrpsim/internal/workload"
)

// CountInstructions walks a record slice with a fetch reconstructor and
// returns the total instruction count it implies.
func CountInstructions(recs []trace.Record, instrBytes, blockBytes uint64) (uint64, error) {
	f, err := trace.NewFetcher(instrBytes, blockBytes)
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, r := range recs {
		total += f.Next(r, nil)
	}
	return total, nil
}

// SimulateRecords runs one policy over a pre-generated record slice,
// deriving the warm-up window from the records themselves.
func SimulateRecords(cfg Config, kind PolicyKind, recs []trace.Record) (Result, error) {
	total, err := CountInstructions(recs, cfg.InstrBytes, uint64(cfg.ICache.BlockBytes))
	if err != nil {
		return Result{}, err
	}
	e, err := NewEngine(cfg, kind, cfg.WarmupFor(total))
	if err != nil {
		return Result{}, err
	}
	return e.Run(recs), nil
}

// SimulateProgram executes a synthesized program for target instructions,
// streaming records straight into a fresh engine (no intermediate record
// buffer). The warm-up window is derived from the target.
func SimulateProgram(cfg Config, kind PolicyKind, prog *workload.Program, seed, target uint64) (Result, error) {
	e, err := NewEngine(cfg, kind, cfg.WarmupFor(target))
	if err != nil {
		return Result{}, err
	}
	if _, err := workload.Emit(prog, seed, target, func(r trace.Record) error {
		e.Process(r)
		return nil
	}); err != nil {
		return Result{}, err
	}
	return e.Result(), nil
}

// GenerateRecords executes a program once and returns its record stream,
// so many policies can replay the identical trace.
func GenerateRecords(prog *workload.Program, seed, target uint64) ([]trace.Record, error) {
	recs := make([]trace.Record, 0, target/8)
	if _, err := workload.Emit(prog, seed, target, func(r trace.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		return nil, err
	}
	return recs, nil
}
