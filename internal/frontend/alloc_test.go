package frontend

import (
	"runtime"
	"testing"

	"ghrpsim/internal/trace"
)

// allocTestConfig turns on the allocation-heaviest features: next-line
// prefetching (per-access filter traffic) and wrong-path injection
// (scratch block lists per mispredicted branch).
func allocTestConfig() Config {
	cfg := smallConfig()
	cfg.NextLinePrefetch = true
	return cfg
}

// allocTestRecords buffers one workload's record stream for replay.
func allocTestRecords(t *testing.T) []trace.Record {
	t.Helper()
	prog := fanOutProgram(t)
	recs, err := GenerateRecords(prog, 1, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// steadyStateAllocs primes process over the first half of the stream —
// past the warm-up flip and every scratch-slice growth — then measures
// heap allocations per record over the second half.
func steadyStateAllocs(t *testing.T, recs []trace.Record, process func(trace.Record)) float64 {
	t.Helper()
	half := len(recs) / 2
	for _, r := range recs[:half] {
		process(r)
	}
	i := half
	return testing.AllocsPerRun(2000, func() {
		process(recs[i])
		i++
		if i == len(recs) {
			i = half
		}
	})
}

// The hot replay loop must not allocate: after warm-up, Process is
// zero-alloc per record for a single engine. This pins the perf work
// the fused replay depends on — the direct-mapped prefetch filter (no
// map inserts) and the span-based fetch walk (no per-record closures).
func TestEngineProcessZeroAllocs(t *testing.T) {
	recs := allocTestRecords(t)
	for _, kind := range []PolicyKind{PolicyLRU, PolicyGHRP} {
		e, err := NewEngine(allocTestConfig(), kind, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		if avg := steadyStateAllocs(t, recs, func(r trace.Record) { e.Process(r) }); avg != 0 {
			t.Errorf("%v: Process allocates %.3f objects/record in steady state, want 0", kind, avg)
		}
	}
}

// The fused fan-out step must stay zero-alloc too: driving N lanes off
// one record is the whole point of the single-pass replay, and a
// per-lane allocation would scale with the policy roster.
func TestFanOutProcessZeroAllocs(t *testing.T) {
	recs := allocTestRecords(t)
	fo, err := NewFanOut(allocTestConfig(), []PolicyKind{PolicyLRU, PolicySRRIP, PolicyGHRP}, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if avg := steadyStateAllocs(t, recs, func(r trace.Record) { fo.Process(r) }); avg != 0 {
		t.Errorf("fan-out Process allocates %.3f objects/record in steady state, want 0", avg)
	}
}

// The streaming path (program executor included) must allocate O(1) per
// replay, not O(records): doubling the instruction target must add
// almost no allocations beyond the shared setup.
func TestStreamingAllocsBounded(t *testing.T) {
	prog := fanOutProgram(t)
	cfg := allocTestConfig()
	run := func(target uint64) (allocs uint64, records uint64) {
		e, err := NewEngine(cfg, PolicyGHRP, 10_000)
		if err != nil {
			t.Fatal(err)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		res, err := e.StreamProgram(prog, 1, target, StreamOptions{})
		runtime.ReadMemStats(&after)
		if err != nil {
			t.Fatal(err)
		}
		return after.Mallocs - before.Mallocs, res.Records
	}
	a1, r1 := run(100_000)
	a2, r2 := run(200_000)
	if r2 <= r1 {
		t.Fatalf("targets produced %d and %d records; need growth to measure", r1, r2)
	}
	perRecord := float64(a2-a1) / float64(r2-r1)
	if perRecord > 0.01 {
		t.Errorf("streaming replay allocates %.4f objects/record (%d allocs over %d extra records), want ~0",
			perRecord, a2-a1, r2-r1)
	}
}
