package frontend

import (
	"errors"
	"testing"

	"ghrpsim/internal/workload"
)

func streamTestProgram(t *testing.T) (*workload.Program, uint64) {
	t.Helper()
	spec := workload.SuiteN(8)[3]
	prog, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return prog, 20_000
}

// CountProgram must report exactly what buffering the stream and running
// CountInstructions over it reports.
func TestCountProgramMatchesBuffered(t *testing.T) {
	cfg := DefaultConfig()
	prog, target := streamTestProgram(t)
	recs, err := GenerateRecords(prog, 1, target)
	if err != nil {
		t.Fatal(err)
	}
	wantInstrs, err := CountInstructions(recs, cfg.InstrBytes, uint64(cfg.ICache.BlockBytes))
	if err != nil {
		t.Fatal(err)
	}
	gotInstrs, gotRecs, err := CountProgram(cfg, prog, 1, target, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if gotInstrs != wantInstrs || gotRecs != uint64(len(recs)) {
		t.Errorf("CountProgram = (%d instrs, %d records), buffered = (%d, %d)",
			gotInstrs, gotRecs, wantInstrs, len(recs))
	}
}

// Streaming replay with a CountProgram-derived warm-up must be
// bit-identical to the buffered SimulateRecords path.
func TestStreamMatchesSimulateRecords(t *testing.T) {
	cfg := DefaultConfig()
	prog, target := streamTestProgram(t)
	recs, err := GenerateRecords(prog, 1, target)
	if err != nil {
		t.Fatal(err)
	}
	total, _, err := CountProgram(cfg, prog, 1, target, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warm := cfg.WarmupFor(total)
	for _, kind := range PaperPolicies() {
		want, err := SimulateRecords(cfg, kind, recs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SimulateProgramStream(cfg, kind, prog, 1, target, warm, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%v: streaming diverged\n got %+v\nwant %+v", kind, got, want)
		}
	}
}

// SimulateProgram remains the target-derived-warm-up convenience.
func TestSimulateProgramDelegates(t *testing.T) {
	cfg := DefaultConfig()
	prog, target := streamTestProgram(t)
	want, err := SimulateProgramStream(cfg, PolicyGHRP, prog, 1, target, cfg.WarmupFor(target), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateProgram(cfg, PolicyGHRP, prog, 1, target)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("SimulateProgram diverged from explicit-warm-up stream")
	}
}

// A Progress callback error must abort the replay and surface unwrapped,
// so errors.Is-based cancellation works through the stack.
func TestStreamProgressAborts(t *testing.T) {
	cfg := DefaultConfig()
	prog, target := streamTestProgram(t)
	sentinel := errors.New("stop here")
	var calls int
	var lastRecords uint64
	_, err := SimulateProgramStream(cfg, PolicyLRU, prog, 1, target, 0, StreamOptions{
		ProgressEvery: 128,
		Progress: func(records, instructions uint64) error {
			calls++
			lastRecords = records
			if calls == 3 {
				return sentinel
			}
			return nil
		},
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 3 || lastRecords != 3*128 {
		t.Errorf("aborted after %d calls at %d records, want 3 calls at 384", calls, lastRecords)
	}

	_, _, err = CountProgram(cfg, prog, 1, target, StreamOptions{
		ProgressEvery: 128,
		Progress:      func(records, instructions uint64) error { return sentinel },
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("CountProgram err = %v, want sentinel", err)
	}
}
