package frontend

import (
	"errors"
	"testing"
)

// TestFanOutParallelMatchesSerial pins the checkpoint-parallel
// contract: splitting lane replay across worker goroutines must produce
// results bit-identical to the serial fused path for any worker count,
// with and without a warm-up window, duplicate lanes included. The
// target is chosen to cross chunk boundaries so both the full-chunk
// publish path and the final drain are exercised.
func TestFanOutParallelMatchesSerial(t *testing.T) {
	prog := fanOutProgram(t)
	cfg := smallConfig()
	const target = 150_000
	kinds := append(allPolicies(), PolicyGHRP, PolicyLRU) // duplicates ride along
	total, _, err := CountProgram(cfg, prog, 1, target, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, warm := range []uint64{0, cfg.WarmupFor(total)} {
		serial, err := SimulateFanOut(cfg, kinds, prog, 1, target, warm, StreamOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, len(kinds), len(kinds) + 5} {
			split, err := SimulateFanOutSplit(cfg, kinds, prog, 1, target, warm, workers, StreamOptions{})
			if err != nil {
				t.Fatalf("warm=%d workers=%d: %v", warm, workers, err)
			}
			if len(split) != len(serial) {
				t.Fatalf("warm=%d workers=%d: got %d results, want %d", warm, workers, len(split), len(serial))
			}
			for i := range serial {
				if split[i] != serial[i] {
					t.Errorf("warm=%d workers=%d lane %d (%v): parallel result diverges:\n split: %+v\nserial: %+v",
						warm, workers, i, kinds[i], split[i], serial[i])
				}
			}
		}
	}
}

// TestFanOutParallelProgressAbort checks that an aborting progress
// callback shuts the worker pipeline down cleanly: the error comes
// back, and the call does not deadlock on the bounded chunk pool.
func TestFanOutParallelProgressAbort(t *testing.T) {
	prog := fanOutProgram(t)
	cfg := smallConfig()
	boom := errors.New("stop")
	opts := StreamOptions{
		ProgressEvery: 64,
		Progress: func(records, instructions uint64) error {
			if records >= 512 {
				return boom
			}
			return nil
		},
	}
	_, err := SimulateFanOutSplit(cfg, allPolicies(), prog, 1, 150_000, 0, 4, opts)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the progress abort error", err)
	}
}
