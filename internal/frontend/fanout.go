package frontend

import (
	"fmt"

	"ghrpsim/internal/trace"
	"ghrpsim/internal/workload"
)

// FanOut replays one record stream through N policy lanes in lockstep:
// the policy-independent front (direction predictor, RAS, indirect
// predictor, fetch reconstruction, warm-up accounting) is evaluated once
// per record and its decisions — the coalesced I-cache access list, the
// wrong-path block list, the BTB probe — are applied to every lane.
//
// Because no front component observes cache or BTB state, each lane sees
// exactly the sequence of accesses it would derive as a standalone
// Engine, and lanes never observe each other; the fused replay is
// therefore bit-identical to N independent per-policy replays of the
// same stream. TestFanOutMatchesPerPolicy pins this contract.
type FanOut struct {
	front *front
	lanes []lane
}

// NewFanOut builds a fused simulator driving one lane per element of
// kinds (duplicates allowed — each gets an independent lane). The
// warm-up limit applies to all lanes, exactly as it would to N separate
// engines built with the same limit.
func NewFanOut(cfg Config, kinds []PolicyKind, warmupLimit uint64) (*FanOut, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("frontend: fan-out needs at least one policy")
	}
	f, err := newFront(cfg, warmupLimit)
	if err != nil {
		return nil, err
	}
	lanes, err := newLanes(cfg, kinds, f.warm)
	if err != nil {
		return nil, err
	}
	// Fan-out results never expose efficiency matrices (only Engine's
	// heat-map path reads them), so the per-access efficiency writes —
	// one random cold-line touch per lane per access — are dead work
	// here. Replacement decisions and Results are unaffected, so the
	// bit-identity contract with standalone engines holds.
	for i := range lanes {
		lanes[i].icache.SetEffTracking(false)
		lanes[i].ibtb.SetEffTracking(false)
	}
	return &FanOut{front: f, lanes: lanes}, nil
}

// Process consumes one branch record, advancing every lane.
func (fo *FanOut) Process(r trace.Record) {
	stepRecord(fo.front, fo.lanes, r)
}

// Instructions returns total instructions processed so far.
func (fo *FanOut) Instructions() uint64 { return fo.front.instrs }

// Results snapshots the per-lane statistics, in the order the policy
// kinds were given to NewFanOut.
func (fo *FanOut) Results() []Result {
	out := make([]Result, len(fo.lanes))
	for i := range fo.lanes {
		out[i] = makeResult(fo.front, &fo.lanes[i])
	}
	return out
}

// StreamProgram re-emits a program's deterministic record stream
// straight into the fan-out, with no intermediate record buffer; the
// replay cost is one program interpretation regardless of lane count.
//
// Internally the stream runs lane-major: the front's decisions are
// serialized into chunks (chunk.go) and each lane replays a whole chunk
// per activation, which keeps one specialized replay body and one
// lane's tables hot at a time instead of cycling through all of them
// every record. The result is bit-identical to record-major Process
// calls; TestFanOutMatchesPerPolicy and the chunking equivalence tests
// pin that.
func (fo *FanOut) StreamProgram(prog *workload.Program, seed, target uint64, opts StreamOptions) ([]Result, error) {
	every := opts.ProgressEvery
	if every == 0 {
		every = DefaultProgressEvery
	}
	ch := newDecChunk()
	var n uint64
	_, err := workload.Emit(prog, seed, target, func(r trace.Record) error {
		fo.front.decide(r, &fo.front.dec)
		ch.push(&fo.front.dec)
		if ch.full() {
			for i := range fo.lanes {
				fo.lanes[i].replay(ch)
			}
			ch.reset()
		}
		if opts.Progress != nil {
			n++
			if n%every == 0 {
				return opts.Progress(n, fo.front.instrs)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range fo.lanes {
		fo.lanes[i].replay(ch)
	}
	return fo.Results(), nil
}

// SimulateFanOut executes a workload program once and replays it under
// every given policy in lockstep. It returns one Result per kind, each
// bit-identical to what SimulateProgramStream would produce for that
// kind alone with the same warm-up limit.
func SimulateFanOut(cfg Config, kinds []PolicyKind, prog *workload.Program, seed, target, warmupLimit uint64, opts StreamOptions) ([]Result, error) {
	fo, err := NewFanOut(cfg, kinds, warmupLimit)
	if err != nil {
		return nil, err
	}
	return fo.StreamProgram(prog, seed, target, opts)
}
