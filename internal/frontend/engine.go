package frontend

import (
	"fmt"

	"ghrpsim/internal/btb"
	"ghrpsim/internal/cache"
	"ghrpsim/internal/core"
	"ghrpsim/internal/indirect"
	"ghrpsim/internal/perceptron"
	"ghrpsim/internal/policies"
	"ghrpsim/internal/trace"
)

// Result reports one simulation's outcome. MPKI values use the counted
// (post-warm-up) instruction window, matching the paper's methodology.
type Result struct {
	Policy            PolicyKind
	TotalInstructions uint64
	CountedInstrs     uint64
	Records           uint64
	ICache            cache.Stats
	BTB               btb.Stats
	Branch            perceptron.Stats
	RAS               RASStats
	Indirect          indirect.Stats
	Prefetch          PrefetchStats
}

// ICacheMPKI is the I-cache misses per 1000 counted instructions.
func (r Result) ICacheMPKI() float64 { return r.ICache.MPKI(r.CountedInstrs) }

// BTBMPKI is the BTB misses per 1000 counted instructions.
func (r Result) BTBMPKI() float64 { return r.BTB.MPKI(r.CountedInstrs) }

// BranchMPKI is conditional mispredictions per 1000 counted instructions.
func (r Result) BranchMPKI() float64 { return r.Branch.MPKI(r.CountedInstrs) }

// Engine is the trace-driven front-end simulator.
type Engine struct {
	cfg     Config
	kind    PolicyKind
	icache  *cache.Cache
	ibtb    *btb.BTB
	ghrp    *core.ICachePolicy // non-nil only for PolicyGHRP
	bpred   *perceptron.Predictor
	ras     *RAS
	ind     *indirect.Predictor
	fetcher *trace.Fetcher

	blockShift   uint
	instrShift   uint
	warmupLimit  uint64
	warm         bool // true while warming up
	instrs       uint64
	counted      uint64
	records      uint64
	pendingWrong []uint64 // scratch for wrong-path injection
	lastBlock    uint64   // fetch buffer: last I-cache line touched
	haveLast     bool
	prefetched   map[uint64]struct{} // prefetched blocks not yet demanded
	prefStats    PrefetchStats
}

// PrefetchStats counts next-line prefetcher activity.
type PrefetchStats struct {
	Issued uint64 // prefetches that inserted a block
	Useful uint64 // prefetched blocks later hit by a demand access
}

// Coverage returns the fraction of issued prefetches that were used.
func (s PrefetchStats) Coverage() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful) / float64(s.Issued)
}

// NewEngine builds a simulator for the given configuration and
// replacement policy (applied to both the I-cache and BTB). warmupLimit
// is the number of leading instructions excluded from statistics; use
// WarmupFor to derive it from a trace length per the paper's rule.
func NewEngine(cfg Config, kind PolicyKind, warmupLimit uint64) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if kind >= numPolicies {
		return nil, fmt.Errorf("frontend: invalid policy kind %d", kind)
	}
	e := &Engine{cfg: cfg, kind: kind, warmupLimit: warmupLimit}
	e.blockShift = shiftOf(uint64(cfg.ICache.BlockBytes))
	e.instrShift = shiftOf(cfg.InstrBytes)

	icPolicy, err := e.makeICachePolicy()
	if err != nil {
		return nil, err
	}
	e.icache, err = cache.New(cfg.ICache.Sets(), cfg.ICache.Ways, icPolicy)
	if err != nil {
		return nil, err
	}
	btbPolicy, err := e.makeBTBPolicy()
	if err != nil {
		return nil, err
	}
	e.ibtb, err = btb.New(cfg.BTB.Sets(), cfg.BTB.Ways, cfg.InstrBytes, btbPolicy)
	if err != nil {
		return nil, err
	}
	e.bpred, err = perceptron.New(cfg.Branch)
	if err != nil {
		return nil, err
	}
	e.fetcher, err = trace.NewFetcher(cfg.InstrBytes, uint64(cfg.ICache.BlockBytes))
	if err != nil {
		return nil, err
	}
	e.ras = NewRAS(32)
	e.ind, err = indirect.New(indirect.Config{})
	if err != nil {
		return nil, err
	}
	if cfg.NextLinePrefetch {
		e.prefetched = make(map[uint64]struct{}, 1024)
	}
	if warmupLimit > 0 {
		e.warm = true
		e.icache.SetWarmup(true)
		e.ibtb.SetWarmup(true)
	}
	return e, nil
}

// WarmupFor derives the warm-up instruction count for a trace of the
// given length under cfg: half the instructions, capped (§IV-C).
func (c Config) WarmupFor(totalInstructions uint64) uint64 {
	w := uint64(float64(totalInstructions) * c.WarmupFraction)
	if w > c.WarmupCap {
		w = c.WarmupCap
	}
	return w
}

func (e *Engine) makeICachePolicy() (cache.Policy, error) {
	switch e.kind {
	case PolicyLRU:
		return policies.NewLRU(), nil
	case PolicyRandom:
		return policies.NewRandom(e.cfg.RandomSeed), nil
	case PolicyFIFO:
		return policies.NewFIFO(), nil
	case PolicySRRIP:
		return policies.NewSRRIP(), nil
	case PolicySDBP:
		return policies.NewSDBPConfig(e.cfg.SDBP), nil
	case PolicySHiP:
		return policies.NewSHiP(), nil
	case PolicyDIP:
		return policies.NewDIP(), nil
	case PolicyGHRP:
		p, err := core.NewICachePolicy(e.cfg.GHRP)
		if err != nil {
			return nil, err
		}
		e.ghrp = p
		return p, nil
	default:
		return nil, fmt.Errorf("frontend: unhandled policy %v", e.kind)
	}
}

func (e *Engine) makeBTBPolicy() (cache.Policy, error) {
	switch e.kind {
	case PolicyLRU:
		return policies.NewLRU(), nil
	case PolicyRandom:
		return policies.NewRandom(e.cfg.RandomSeed + 1), nil
	case PolicyFIFO:
		return policies.NewFIFO(), nil
	case PolicySRRIP:
		return policies.NewSRRIP(), nil
	case PolicySDBP:
		return policies.NewSDBPConfig(e.cfg.SDBP), nil
	case PolicySHiP:
		return policies.NewSHiP(), nil
	case PolicyDIP:
		return policies.NewDIP(), nil
	case PolicyGHRP:
		// The BTB shares the I-cache's predictor and metadata (§III-E).
		return btb.NewGHRPPolicy(e.ghrp, uint64(e.cfg.ICache.BlockBytes))
	default:
		return nil, fmt.Errorf("frontend: unhandled policy %v", e.kind)
	}
}

// ICache exposes the simulated I-cache (for efficiency heat maps).
func (e *Engine) ICache() *cache.Cache { return e.icache }

// BTB exposes the simulated BTB.
func (e *Engine) BTB() *btb.BTB { return e.ibtb }

// GHRP returns the GHRP I-cache policy, or nil for other policies (and
// on a nil receiver).
func (e *Engine) GHRP() *core.ICachePolicy {
	if e == nil { // callers that load a cached Result have no engine
		return nil
	}
	return e.ghrp
}

// BranchPredictor exposes the direction predictor.
func (e *Engine) BranchPredictor() *perceptron.Predictor { return e.bpred }

// ReturnStack exposes the return address stack.
func (e *Engine) ReturnStack() *RAS { return e.ras }

// IndirectPredictor exposes the indirect target predictor.
func (e *Engine) IndirectPredictor() *indirect.Predictor { return e.ind }

// Instructions returns total instructions processed so far.
func (e *Engine) Instructions() uint64 { return e.instrs }

// Process consumes one branch record: reconstruct the fetch group,
// access the I-cache per block, predict and train the direction
// predictor, access the BTB for taken branches, and manage speculative
// history.
func (e *Engine) Process(r trace.Record) {
	e.records++
	preWarm := e.warm

	// Fetch-group reconstruction: each distinct block is one I-cache
	// access whose PC is the first instruction fetched in that block.
	startPC := e.fetcher.PC()
	first := true
	n := e.fetcher.Next(r, func(block uint64, _ int) {
		// Fetch-buffer coalescing: consecutive fetch groups from the
		// same cache line (sequential fall-through past a not-taken
		// branch, or a short taken branch within the line) read the
		// fetch buffer, not the I-cache. Without this, dense basic
		// blocks would count several I-cache accesses per line and
		// streaming lines would look "reused".
		if e.haveLast && block == e.lastBlock {
			return
		}
		e.lastBlock, e.haveLast = block, true
		pc := block << e.blockShift
		if first {
			// A mid-block fetch begins at the branch target, not the
			// block base; signatures must see the real entry point.
			if startPC != 0 && startPC>>e.blockShift == block {
				pc = startPC
			} else if startPC == 0 {
				pc = r.PC
			}
			first = false
		}
		e.access(block, pc)
	})
	e.instrs += n
	if !e.warm {
		e.counted += n
	}

	// Direction prediction for conditional branches; other transfers
	// contribute to path history only.
	if r.Type.Conditional() {
		o := e.bpred.Predict(r.PC)
		mispredicted := o.Taken != r.Taken
		e.bpred.Update(o, r.PC, r.Taken)
		if mispredicted && e.cfg.WrongPath != WrongPathOff {
			e.injectWrongPath(r)
		}
	} else {
		e.bpred.PushUnconditional(r.PC)
	}

	// BTB access for taken branches that use it.
	if r.Taken && r.Type.UsesBTB() {
		e.ibtb.Access(r.PC, r.Target)
	}

	// Return address stack and indirect target prediction: calls push
	// their return address, returns pop and score it, and indirect
	// transfers consult the ITTAGE-style target predictor (the paper's
	// §VI future-work interaction).
	switch r.Type {
	case trace.DirectCall, trace.IndirectCall:
		e.ras.Push(r.FallThrough(e.cfg.InstrBytes))
	case trace.Return:
		e.ras.Pop(r.Target)
	}
	if r.Type == trace.IndirectCall || r.Type == trace.IndirectJump {
		o := e.ind.Predict(r.PC)
		e.ind.Update(o, r.PC, r.Target)
	}

	// Warm-up boundary: flip statistics on once crossed.
	if preWarm && e.instrs >= e.warmupLimit {
		e.warm = false
		e.icache.SetWarmup(false)
		e.ibtb.SetWarmup(false)
		e.bpred.ResetStats()
		e.ras.ResetStats()
		e.ind.ResetStats()
	}
}

// access performs one I-cache access and mirrors the retired GHRP path
// history (right-path accesses commit immediately in a trace-driven
// simulation). With next-line prefetching enabled, a demand miss also
// installs the following block; prefetch fills do not count as demand
// traffic.
func (e *Engine) access(block, pc uint64) {
	hit, _ := e.icache.AccessEx(cache.Access{Block: block, PC: pc})
	if e.ghrp != nil {
		e.ghrp.History().Commit(pc)
	}
	if e.prefetched != nil {
		if hit {
			if _, ok := e.prefetched[block]; ok {
				delete(e.prefetched, block)
				if !e.warm {
					e.prefStats.Useful++
				}
			}
		} else {
			next := block + 1
			if !e.icache.Lookup(next) {
				if !e.warm {
					e.icache.SetWarmup(true)
				}
				_, bypassed := e.icache.AccessEx(cache.Access{Block: next, PC: next << e.blockShift})
				if !e.warm {
					e.icache.SetWarmup(false)
					if !bypassed {
						e.prefStats.Issued++
					}
				}
				if !bypassed {
					// Bound the pending set; stale entries only affect
					// the usefulness statistic, not simulation state.
					if len(e.prefetched) > 1<<16 {
						clear(e.prefetched)
					}
					e.prefetched[next] = struct{}{}
				}
			}
		}
	}
}

// injectWrongPath models wrong-path fetch after a conditional
// misprediction: a few sequential blocks from the not-executed path are
// fetched, polluting the I-cache and GHRP's speculative history; then
// the speculative history is restored from the retired history (§III-F),
// unless recovery is disabled for the ablation.
func (e *Engine) injectWrongPath(r trace.Record) {
	wrongPC := r.Target
	if r.Taken {
		wrongPC = r.FallThrough(e.cfg.InstrBytes)
	}
	e.pendingWrong = e.pendingWrong[:0]
	base := wrongPC >> e.blockShift
	for i := 0; i < e.cfg.WrongPathDepth; i++ {
		e.pendingWrong = append(e.pendingWrong, base+uint64(i))
	}
	// Wrong-path accesses change cache and history state but are not
	// demand misses; exclude them from statistics.
	if !e.warm {
		e.icache.SetWarmup(true)
	}
	for i, b := range e.pendingWrong {
		pc := b << e.blockShift
		if i == 0 {
			pc = wrongPC
		}
		e.icache.Access(cache.Access{Block: b, PC: pc})
	}
	if !e.warm {
		e.icache.SetWarmup(false)
	}
	if e.ghrp != nil && e.cfg.WrongPath == WrongPathInject {
		e.ghrp.History().Recover()
	}
}

// Run processes a record slice and returns the result.
func (e *Engine) Run(recs []trace.Record) Result {
	for _, r := range recs {
		e.Process(r)
	}
	return e.Result()
}

// Result snapshots the current statistics.
func (e *Engine) Result() Result {
	counted := e.counted
	return Result{
		Policy:            e.kind,
		TotalInstructions: e.instrs,
		CountedInstrs:     counted,
		Records:           e.records,
		ICache:            e.icache.Stats(),
		BTB:               e.ibtb.Stats(),
		Branch:            e.bpred.Stats(),
		RAS:               e.ras.Stats(),
		Indirect:          e.ind.Stats(),
		Prefetch:          e.prefStats,
	}
}

func shiftOf(v uint64) uint {
	s := uint(0)
	for ; v > 1; v >>= 1 {
		s++
	}
	return s
}
