package frontend

import (
	"fmt"

	"ghrpsim/internal/btb"
	"ghrpsim/internal/cache"
	"ghrpsim/internal/core"
	"ghrpsim/internal/indirect"
	"ghrpsim/internal/perceptron"
	"ghrpsim/internal/policies"
	"ghrpsim/internal/trace"
)

// Result reports one simulation's outcome. MPKI values use the counted
// (post-warm-up) instruction window, matching the paper's methodology.
type Result struct {
	Policy            PolicyKind
	TotalInstructions uint64
	CountedInstrs     uint64
	Records           uint64
	ICache            cache.Stats
	BTB               btb.Stats
	Branch            perceptron.Stats
	RAS               RASStats
	Indirect          indirect.Stats
	Prefetch          PrefetchStats
}

// ICacheMPKI is the I-cache misses per 1000 counted instructions.
func (r Result) ICacheMPKI() float64 { return r.ICache.MPKI(r.CountedInstrs) }

// BTBMPKI is the BTB misses per 1000 counted instructions.
func (r Result) BTBMPKI() float64 { return r.BTB.MPKI(r.CountedInstrs) }

// BranchMPKI is conditional mispredictions per 1000 counted instructions.
func (r Result) BranchMPKI() float64 { return r.Branch.MPKI(r.CountedInstrs) }

// The simulator is split along the policy axis so N policies can replay
// one stream in lockstep (see FanOut): front holds everything whose
// evolution is independent of the replacement policy — the direction
// predictor, RAS, indirect predictor, fetch reconstruction, fetch-buffer
// coalescing, wrong-path decisions, and the instruction/warm-up
// accounting — while lane holds the per-policy structures the paper
// compares: the I-cache, the BTB, and (for GHRP) their shared predictor.
// None of the front's components observe cache or BTB state, which is
// what makes driving N lanes from one front bit-identical to N
// independent engines: each lane sees exactly the access, injection and
// warm-up sequence it would have derived on its own.
//
// The split is made explicit by stepDecisions: front.decide distills one
// record into the four lane-facing operations (coalesced I-cache
// accesses, optional wrong-path injection, optional BTB probe, optional
// warm-up flip), and each lane applies them through a step function
// specialized to its concrete policy types. Because both the serial and
// the checkpoint-parallel paths replay the same stepDecisions through
// the same apply code, they cannot diverge.

// blockAccess is one pending I-cache access of the current record's
// fetch group: the block and the PC the access is attributed to.
type blockAccess struct {
	block uint64
	pc    uint64
}

// stepDecisions is the policy-independent digest of one branch record:
// everything a lane needs to advance, and nothing else. accesses aliases
// front scratch and is valid until the next decide call.
type stepDecisions struct {
	accesses  []blockAccess
	warm      bool // warm-up state the lane ops run under (pre-flip)
	inject    bool // wrong-path pollution after a misprediction
	wrongPC   uint64
	btb       bool // taken branch probing the BTB
	btbPC     uint64
	btbTarget uint64
	flip      bool // warm-up boundary crossed at the end of this record
}

// front is the policy-independent half of the simulator.
type front struct {
	cfg     Config
	bpred   *perceptron.Predictor
	ras     *RAS
	ind     *indirect.Predictor
	fetcher *trace.Fetcher

	blockShift  uint
	instrShift  uint
	warmupLimit uint64
	warm        bool // true while warming up
	instrs      uint64
	counted     uint64
	records     uint64
	lastBlock   uint64 // fetch buffer: last I-cache line touched
	haveLast    bool

	spans    []trace.BlockSpan // scratch: current record's fetch blocks
	accesses []blockAccess     // scratch: coalesced I-cache accesses
	dec      stepDecisions     // scratch: current record's decisions
}

func newFront(cfg Config, warmupLimit uint64) (*front, error) {
	f := &front{cfg: cfg, warmupLimit: warmupLimit}
	f.blockShift = shiftOf(uint64(cfg.ICache.BlockBytes))
	f.instrShift = shiftOf(cfg.InstrBytes)
	var err error
	f.bpred, err = perceptron.New(cfg.Branch)
	if err != nil {
		return nil, err
	}
	f.fetcher, err = trace.NewFetcher(cfg.InstrBytes, uint64(cfg.ICache.BlockBytes))
	if err != nil {
		return nil, err
	}
	f.ras = NewRAS(32)
	f.ind, err = indirect.New(indirect.Config{})
	if err != nil {
		return nil, err
	}
	if warmupLimit > 0 {
		f.warm = true
	}
	return f, nil
}

// decide advances the front by one branch record and fills d with the
// lane-facing decisions. It touches no lane state; stepRecord applies d
// to every lane afterwards.
//
//ghrp:hotpath
func (f *front) decide(r trace.Record, d *stepDecisions) {
	f.records++
	preWarm := f.warm
	d.warm = preWarm
	d.inject = false
	d.btb = false
	d.flip = false

	// Fetch-group reconstruction: each distinct block is one I-cache
	// access whose PC is the first instruction fetched in that block.
	// Fetch-buffer coalescing drops consecutive fetch groups from the
	// same cache line (sequential fall-through past a not-taken branch,
	// or a short taken branch within the line): they read the fetch
	// buffer, not the I-cache. Without this, dense basic blocks would
	// count several I-cache accesses per line and streaming lines would
	// look "reused". The coalesced access list is policy-independent, so
	// it is computed once and applied to every lane.
	startPC := f.fetcher.PC()
	var n uint64
	f.spans, n = f.fetcher.NextSpans(r, f.spans[:0])
	f.accesses = f.accesses[:0]
	first := true
	for i := range f.spans {
		block := f.spans[i].Block
		if f.haveLast && block == f.lastBlock {
			continue
		}
		f.lastBlock, f.haveLast = block, true
		pc := block << f.blockShift
		if first {
			// A mid-block fetch begins at the branch target, not the
			// block base; signatures must see the real entry point.
			if startPC != 0 && startPC>>f.blockShift == block {
				pc = startPC
			} else if startPC == 0 {
				pc = r.PC
			}
			first = false
		}
		f.accesses = append(f.accesses, blockAccess{block: block, pc: pc})
	}
	d.accesses = f.accesses
	f.instrs += n
	if !f.warm {
		f.counted += n
	}

	// Direction prediction for conditional branches; other transfers
	// contribute to path history only.
	if r.Type.Conditional() {
		o := f.bpred.Predict(r.PC)
		mispredicted := o.Taken != r.Taken
		f.bpred.Update(o, r.PC, r.Taken)
		if mispredicted && f.cfg.WrongPath != WrongPathOff {
			// Wrong-path fetch after a misprediction (§III-F): a few
			// sequential blocks from the not-executed path. The lanes
			// derive the block list from the wrong-path PC.
			d.inject = true
			if r.Taken {
				d.wrongPC = r.FallThrough(f.cfg.InstrBytes)
			} else {
				d.wrongPC = r.Target
			}
		}
	} else {
		f.bpred.PushUnconditional(r.PC)
	}

	// BTB probe for taken branches that use it.
	if r.Taken && r.Type.UsesBTB() {
		d.btb = true
		d.btbPC = r.PC
		d.btbTarget = r.Target
	}

	// Return address stack and indirect target prediction: calls push
	// their return address, returns pop and score it, and indirect
	// transfers consult the ITTAGE-style target predictor (the paper's
	// §VI future-work interaction).
	switch r.Type {
	case trace.DirectCall, trace.IndirectCall:
		f.ras.Push(r.FallThrough(f.cfg.InstrBytes))
	case trace.Return:
		f.ras.Pop(r.Target)
	}
	if r.Type == trace.IndirectCall || r.Type == trace.IndirectJump {
		o := f.ind.Predict(r.PC)
		f.ind.Update(o, r.PC, r.Target)
	}

	// Warm-up boundary: flip statistics on once crossed.
	if preWarm && f.instrs >= f.warmupLimit {
		f.warm = false
		d.flip = true
		f.bpred.ResetStats()
		f.ras.ResetStats()
		f.ind.ResetStats()
	}
}

// lane is the per-policy half of the simulator: one I-cache and BTB
// replaying under one replacement policy. Lanes are laid out as values
// in a contiguous slice, and their caches carve tag/validity state from
// one shared arena, so the per-record sweep over N lanes walks a single
// slab instead of N scattered heap objects.
type lane struct {
	kind        PolicyKind
	icache      cache.Cache
	ibtb        btb.BTB
	ghrp        *core.ICachePolicy // non-nil only for PolicyGHRP
	pref        prefetchSet        // nil unless NextLinePrefetch
	prefStats   PrefetchStats
	blockShift  uint
	wrongDepth  int
	recoverHist bool // WrongPathInject: restore speculative history
	// step applies one record's decisions to this lane; replay applies a
	// whole chunk of them lane-major. Both are bound at construction to
	// instantiations specialized to the lane's concrete policy types, so
	// the cache and BTB access paths call the policy callbacks
	// statically instead of through the cache.Policy interface.
	step   func(d *stepDecisions)
	replay func(ch *decChunk)
}

// PrefetchStats counts next-line prefetcher activity.
type PrefetchStats struct {
	Issued uint64 // prefetches that inserted a block
	Useful uint64 // prefetched blocks later hit by a demand access
}

// Coverage returns the fraction of issued prefetches that were used.
func (s PrefetchStats) Coverage() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful) / float64(s.Issued)
}

// laneHotWords is how many arena words one lane's cache and BTB carve.
func laneHotWords(cfg Config) int {
	return cache.HotWords(cfg.ICache.Sets(), cfg.ICache.Ways) +
		btb.HotWords(cfg.BTB.Sets(), cfg.BTB.Ways)
}

// newLanes builds one initialized lane per kind, all carving hot state
// from a single shared arena.
func newLanes(cfg Config, kinds []PolicyKind, warm bool) ([]lane, error) {
	ar := cache.NewArena(len(kinds) * laneHotWords(cfg))
	lanes := make([]lane, len(kinds))
	for i, kind := range kinds {
		if err := lanes[i].init(cfg, kind, warm, ar); err != nil {
			return nil, err
		}
	}
	return lanes, nil
}

func (l *lane) init(cfg Config, kind PolicyKind, warm bool, ar *cache.Arena) error {
	if kind >= numPolicies {
		return fmt.Errorf("frontend: invalid policy kind %d", kind)
	}
	l.kind = kind
	l.blockShift = shiftOf(uint64(cfg.ICache.BlockBytes))
	l.wrongDepth = cfg.WrongPathDepth
	l.recoverHist = cfg.WrongPath == WrongPathInject
	icPolicy, err := l.makeICachePolicy(cfg)
	if err != nil {
		return err
	}
	if err := l.icache.Init(cfg.ICache.Sets(), cfg.ICache.Ways, icPolicy, ar); err != nil {
		return err
	}
	btbPolicy, err := l.makeBTBPolicy(cfg)
	if err != nil {
		return err
	}
	if err := l.ibtb.Init(cfg.BTB.Sets(), cfg.BTB.Ways, cfg.InstrBytes, btbPolicy, ar); err != nil {
		return err
	}
	if cfg.NextLinePrefetch {
		l.pref = newPrefetchFilter()
	}
	if warm {
		l.icache.SetWarmup(true)
		l.ibtb.SetWarmup(true)
	}
	l.bindStep(icPolicy, btbPolicy)
	return nil
}

func (l *lane) makeICachePolicy(cfg Config) (cache.Policy, error) {
	switch l.kind {
	case PolicyLRU:
		return policies.NewLRU(), nil
	case PolicyRandom:
		return policies.NewRandom(cfg.RandomSeed), nil
	case PolicyFIFO:
		return policies.NewFIFO(), nil
	case PolicySRRIP:
		return policies.NewSRRIP(), nil
	case PolicySDBP:
		return policies.NewSDBPConfig(cfg.SDBP), nil
	case PolicySHiP:
		return policies.NewSHiP(), nil
	case PolicyDIP:
		return policies.NewDIP(), nil
	case PolicyGHRP:
		p, err := core.NewICachePolicy(cfg.GHRP)
		if err != nil {
			return nil, err
		}
		l.ghrp = p
		return p, nil
	default:
		return nil, fmt.Errorf("frontend: unhandled policy %v", l.kind)
	}
}

func (l *lane) makeBTBPolicy(cfg Config) (cache.Policy, error) {
	switch l.kind {
	case PolicyLRU:
		return policies.NewLRU(), nil
	case PolicyRandom:
		return policies.NewRandom(cfg.RandomSeed + 1), nil
	case PolicyFIFO:
		return policies.NewFIFO(), nil
	case PolicySRRIP:
		return policies.NewSRRIP(), nil
	case PolicySDBP:
		return policies.NewSDBPConfig(cfg.SDBP), nil
	case PolicySHiP:
		return policies.NewSHiP(), nil
	case PolicyDIP:
		return policies.NewDIP(), nil
	case PolicyGHRP:
		// The BTB shares the I-cache's predictor and metadata (§III-E).
		return btb.NewGHRPPolicy(l.ghrp, uint64(cfg.ICache.BlockBytes))
	default:
		return nil, fmt.Errorf("frontend: unhandled policy %v", l.kind)
	}
}

// Policy specialization. Passing a concrete policy type to the generic
// access paths would not devirtualize on its own: Go's gcshape
// stenciling collapses all pointer type arguments into one dictionary-
// driven instantiation. Wrapping each concrete policy pointer in its own
// struct type forces a distinct shape per policy, so every wrapper gets
// its own copy of applyStep/cache.AccessWith/btb.AccessWith with the
// policy callbacks statically bound (and inlinable). The wrappers embed
// the pointer; the promoted methods are exactly the policy's own.
type (
	wLRU    struct{ *policies.LRU }
	wFIFO   struct{ *policies.FIFO }
	wRandom struct{ *policies.Random }
	wSRRIP  struct{ *policies.SRRIP }
	wSDBP   struct{ *policies.SDBP }
	wSHiP   struct{ *policies.SHiP }
	wDIP    struct{ *policies.DIP }
	wGHRP   struct{ *core.ICachePolicy }
	wGHRPB  struct{ *btb.GHRPPolicy }
)

// bindLane fixes a lane's step and replay functions to the
// instantiations for its concrete policy pair.
func bindLane[IP, BP cache.Policy](l *lane, ip IP, bp BP) {
	l.step = func(d *stepDecisions) { applyStep(l, ip, bp, d) }
	l.replay = func(ch *decChunk) { replayChunk(l, ip, bp, ch) }
}

// bindStep dispatches once, at construction, from the lane's kind to the
// specialized step function. The default arm falls back to the
// interface-typed instantiation — bit-identical, just not devirtualized.
func (l *lane) bindStep(icp, btbp cache.Policy) {
	switch l.kind {
	case PolicyLRU:
		bindLane(l, wLRU{icp.(*policies.LRU)}, wLRU{btbp.(*policies.LRU)})
	case PolicyRandom:
		bindLane(l, wRandom{icp.(*policies.Random)}, wRandom{btbp.(*policies.Random)})
	case PolicyFIFO:
		bindLane(l, wFIFO{icp.(*policies.FIFO)}, wFIFO{btbp.(*policies.FIFO)})
	case PolicySRRIP:
		bindLane(l, wSRRIP{icp.(*policies.SRRIP)}, wSRRIP{btbp.(*policies.SRRIP)})
	case PolicySDBP:
		bindLane(l, wSDBP{icp.(*policies.SDBP)}, wSDBP{btbp.(*policies.SDBP)})
	case PolicySHiP:
		bindLane(l, wSHiP{icp.(*policies.SHiP)}, wSHiP{btbp.(*policies.SHiP)})
	case PolicyDIP:
		bindLane(l, wDIP{icp.(*policies.DIP)}, wDIP{btbp.(*policies.DIP)})
	case PolicyGHRP:
		bindLane(l, wGHRP{icp.(*core.ICachePolicy)}, wGHRPB{btbp.(*btb.GHRPPolicy)})
	default:
		bindLane(l, icp, btbp)
	}
}

// applyStep advances one lane by one record's decisions, in the exact
// order the historical fused step interleaved them: I-cache accesses,
// wrong-path injection, BTB probe, warm-up flip.
//
//ghrp:hotpath
func applyStep[IP, BP cache.Policy](l *lane, ip IP, bp BP, d *stepDecisions) {
	for i := range d.accesses {
		laneAccess(l, ip, d.accesses[i].block, d.accesses[i].pc, d.warm)
	}
	if d.inject {
		laneInject(l, ip, d.wrongPC, d.warm)
	}
	if d.btb {
		btb.AccessWith(&l.ibtb, bp, d.btbPC, d.btbTarget)
	}
	if d.flip {
		l.icache.SetWarmup(false)
		l.ibtb.SetWarmup(false)
	}
}

// Engine is the trace-driven front-end simulator for one policy: a front
// driving a single lane.
type Engine struct {
	front *front
	lanes []lane // exactly one
}

// NewEngine builds a simulator for the given configuration and
// replacement policy (applied to both the I-cache and BTB). warmupLimit
// is the number of leading instructions excluded from statistics; use
// WarmupFor to derive it from a trace length per the paper's rule.
func NewEngine(cfg Config, kind PolicyKind, warmupLimit uint64) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f, err := newFront(cfg, warmupLimit)
	if err != nil {
		return nil, err
	}
	lanes, err := newLanes(cfg, []PolicyKind{kind}, f.warm)
	if err != nil {
		return nil, err
	}
	return &Engine{front: f, lanes: lanes}, nil
}

// WarmupFor derives the warm-up instruction count for a trace of the
// given length under cfg: half the instructions, capped (§IV-C).
func (c Config) WarmupFor(totalInstructions uint64) uint64 {
	w := uint64(float64(totalInstructions) * c.WarmupFraction)
	if w > c.WarmupCap {
		w = c.WarmupCap
	}
	return w
}

// ICache exposes the simulated I-cache (for efficiency heat maps).
func (e *Engine) ICache() *cache.Cache { return &e.lanes[0].icache }

// BTB exposes the simulated BTB.
func (e *Engine) BTB() *btb.BTB { return &e.lanes[0].ibtb }

// GHRP returns the GHRP I-cache policy, or nil for other policies (and
// on a nil receiver).
func (e *Engine) GHRP() *core.ICachePolicy {
	if e == nil { // callers that load a cached Result have no engine
		return nil
	}
	return e.lanes[0].ghrp
}

// BranchPredictor exposes the direction predictor.
func (e *Engine) BranchPredictor() *perceptron.Predictor { return e.front.bpred }

// ReturnStack exposes the return address stack.
func (e *Engine) ReturnStack() *RAS { return e.front.ras }

// IndirectPredictor exposes the indirect target predictor.
func (e *Engine) IndirectPredictor() *indirect.Predictor { return e.front.ind }

// Instructions returns total instructions processed so far.
func (e *Engine) Instructions() uint64 { return e.front.instrs }

// Process consumes one branch record: reconstruct the fetch group,
// access the I-cache per block, predict and train the direction
// predictor, access the BTB for taken branches, and manage speculative
// history.
func (e *Engine) Process(r trace.Record) {
	stepRecord(e.front, e.lanes, r)
}

// stepRecord advances the front and every lane by one branch record. The
// single-policy Engine and the multi-policy FanOut both funnel through
// it, so the two paths cannot drift apart. It runs once per record and
// must stay allocation-free (TestFanOutProcessZeroAllocs pins the dynamic count;
// the hotalloc analyzer pins the constructs statically).
//
//ghrp:hotpath
func stepRecord(f *front, lanes []lane, r trace.Record) {
	f.decide(r, &f.dec)
	for i := range lanes {
		lanes[i].step(&f.dec)
	}
}

// laneAccess performs one I-cache access and mirrors the retired GHRP
// path history (right-path accesses commit immediately in a trace-driven
// simulation). With next-line prefetching enabled, a demand miss also
// installs the following block; prefetch fills do not count as demand
// traffic.
//
//ghrp:hotpath
func laneAccess[P cache.Policy](l *lane, p P, block, pc uint64, warm bool) {
	hit, _ := cache.AccessWith(&l.icache, p, cache.Access{Block: block, PC: pc})
	if l.ghrp != nil {
		l.ghrp.History().Commit(pc)
	}
	if l.pref == nil {
		return
	}
	if hit {
		if l.pref.take(block) && !warm {
			l.prefStats.Useful++
		}
	} else {
		next := block + 1
		if !l.icache.Lookup(next) {
			if !warm {
				l.icache.SetWarmup(true)
			}
			_, bypassed := cache.AccessWith(&l.icache, p, cache.Access{Block: next, PC: next << l.blockShift})
			if !warm {
				l.icache.SetWarmup(false)
				if !bypassed {
					l.prefStats.Issued++
				}
			}
			if !bypassed {
				l.pref.add(next)
			}
		}
	}
}

// laneInject fetches wrongDepth sequential wrong-path blocks starting at
// wrongPC into this lane's I-cache, polluting it and GHRP's speculative
// history; then the speculative history is restored from the retired
// history (§III-F), unless recovery is disabled for the ablation.
// Wrong-path accesses change cache and history state but are not demand
// misses; they are excluded from statistics.
//
//ghrp:hotpath
func laneInject[P cache.Policy](l *lane, p P, wrongPC uint64, warm bool) {
	if !warm {
		l.icache.SetWarmup(true)
	}
	base := wrongPC >> l.blockShift
	for i := 0; i < l.wrongDepth; i++ {
		b := base + uint64(i)
		pc := b << l.blockShift
		if i == 0 {
			pc = wrongPC
		}
		cache.AccessWith(&l.icache, p, cache.Access{Block: b, PC: pc})
	}
	if !warm {
		l.icache.SetWarmup(false)
	}
	if l.ghrp != nil && l.recoverHist {
		l.ghrp.History().Recover()
	}
}

// Run processes a record slice and returns the result.
func (e *Engine) Run(recs []trace.Record) Result {
	for _, r := range recs {
		e.Process(r)
	}
	return e.Result()
}

// Result snapshots the current statistics.
func (e *Engine) Result() Result {
	return makeResult(e.front, &e.lanes[0])
}

// makeResult assembles one lane's Result from the shared front counters
// and the lane's structures.
func makeResult(f *front, l *lane) Result {
	return Result{
		Policy:            l.kind,
		TotalInstructions: f.instrs,
		CountedInstrs:     f.counted,
		Records:           f.records,
		ICache:            l.icache.Stats(),
		BTB:               l.ibtb.Stats(),
		Branch:            f.bpred.Stats(),
		RAS:               f.ras.Stats(),
		Indirect:          f.ind.Stats(),
		Prefetch:          l.prefStats,
	}
}

func shiftOf(v uint64) uint {
	s := uint(0)
	for ; v > 1; v >>= 1 {
		s++
	}
	return s
}
