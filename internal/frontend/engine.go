package frontend

import (
	"fmt"

	"ghrpsim/internal/btb"
	"ghrpsim/internal/cache"
	"ghrpsim/internal/core"
	"ghrpsim/internal/indirect"
	"ghrpsim/internal/perceptron"
	"ghrpsim/internal/policies"
	"ghrpsim/internal/trace"
)

// Result reports one simulation's outcome. MPKI values use the counted
// (post-warm-up) instruction window, matching the paper's methodology.
type Result struct {
	Policy            PolicyKind
	TotalInstructions uint64
	CountedInstrs     uint64
	Records           uint64
	ICache            cache.Stats
	BTB               btb.Stats
	Branch            perceptron.Stats
	RAS               RASStats
	Indirect          indirect.Stats
	Prefetch          PrefetchStats
}

// ICacheMPKI is the I-cache misses per 1000 counted instructions.
func (r Result) ICacheMPKI() float64 { return r.ICache.MPKI(r.CountedInstrs) }

// BTBMPKI is the BTB misses per 1000 counted instructions.
func (r Result) BTBMPKI() float64 { return r.BTB.MPKI(r.CountedInstrs) }

// BranchMPKI is conditional mispredictions per 1000 counted instructions.
func (r Result) BranchMPKI() float64 { return r.Branch.MPKI(r.CountedInstrs) }

// The simulator is split along the policy axis so N policies can replay
// one stream in lockstep (see FanOut): front holds everything whose
// evolution is independent of the replacement policy — the direction
// predictor, RAS, indirect predictor, fetch reconstruction, fetch-buffer
// coalescing, wrong-path decisions, and the instruction/warm-up
// accounting — while lane holds the per-policy structures the paper
// compares: the I-cache, the BTB, and (for GHRP) their shared predictor.
// None of the front's components observe cache or BTB state, which is
// what makes driving N lanes from one front bit-identical to N
// independent engines: each lane sees exactly the access, injection and
// warm-up sequence it would have derived on its own.

// blockAccess is one pending I-cache access of the current record's
// fetch group: the block and the PC the access is attributed to.
type blockAccess struct {
	block uint64
	pc    uint64
}

// front is the policy-independent half of the simulator.
type front struct {
	cfg     Config
	bpred   *perceptron.Predictor
	ras     *RAS
	ind     *indirect.Predictor
	fetcher *trace.Fetcher

	blockShift  uint
	instrShift  uint
	warmupLimit uint64
	warm        bool // true while warming up
	instrs      uint64
	counted     uint64
	records     uint64
	lastBlock   uint64 // fetch buffer: last I-cache line touched
	haveLast    bool

	spans       []trace.BlockSpan // scratch: current record's fetch blocks
	accesses    []blockAccess     // scratch: coalesced I-cache accesses
	wrongBlocks []uint64          // scratch: wrong-path injection blocks
}

func newFront(cfg Config, warmupLimit uint64) (*front, error) {
	f := &front{cfg: cfg, warmupLimit: warmupLimit}
	f.blockShift = shiftOf(uint64(cfg.ICache.BlockBytes))
	f.instrShift = shiftOf(cfg.InstrBytes)
	var err error
	f.bpred, err = perceptron.New(cfg.Branch)
	if err != nil {
		return nil, err
	}
	f.fetcher, err = trace.NewFetcher(cfg.InstrBytes, uint64(cfg.ICache.BlockBytes))
	if err != nil {
		return nil, err
	}
	f.ras = NewRAS(32)
	f.ind, err = indirect.New(indirect.Config{})
	if err != nil {
		return nil, err
	}
	if warmupLimit > 0 {
		f.warm = true
	}
	return f, nil
}

// lane is the per-policy half of the simulator: one I-cache and BTB
// replaying under one replacement policy.
type lane struct {
	kind        PolicyKind
	icache      *cache.Cache
	ibtb        *btb.BTB
	ghrp        *core.ICachePolicy // non-nil only for PolicyGHRP
	pref        prefetchSet        // nil unless NextLinePrefetch
	prefStats   PrefetchStats
	blockShift  uint
	recoverHist bool // WrongPathInject: restore speculative history
}

// PrefetchStats counts next-line prefetcher activity.
type PrefetchStats struct {
	Issued uint64 // prefetches that inserted a block
	Useful uint64 // prefetched blocks later hit by a demand access
}

// Coverage returns the fraction of issued prefetches that were used.
func (s PrefetchStats) Coverage() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful) / float64(s.Issued)
}

func newLane(cfg Config, kind PolicyKind, warm bool) (*lane, error) {
	if kind >= numPolicies {
		return nil, fmt.Errorf("frontend: invalid policy kind %d", kind)
	}
	l := &lane{kind: kind, blockShift: shiftOf(uint64(cfg.ICache.BlockBytes))}
	l.recoverHist = cfg.WrongPath == WrongPathInject
	icPolicy, err := l.makeICachePolicy(cfg)
	if err != nil {
		return nil, err
	}
	l.icache, err = cache.New(cfg.ICache.Sets(), cfg.ICache.Ways, icPolicy)
	if err != nil {
		return nil, err
	}
	btbPolicy, err := l.makeBTBPolicy(cfg)
	if err != nil {
		return nil, err
	}
	l.ibtb, err = btb.New(cfg.BTB.Sets(), cfg.BTB.Ways, cfg.InstrBytes, btbPolicy)
	if err != nil {
		return nil, err
	}
	if cfg.NextLinePrefetch {
		l.pref = newPrefetchFilter()
	}
	if warm {
		l.icache.SetWarmup(true)
		l.ibtb.SetWarmup(true)
	}
	return l, nil
}

func (l *lane) makeICachePolicy(cfg Config) (cache.Policy, error) {
	switch l.kind {
	case PolicyLRU:
		return policies.NewLRU(), nil
	case PolicyRandom:
		return policies.NewRandom(cfg.RandomSeed), nil
	case PolicyFIFO:
		return policies.NewFIFO(), nil
	case PolicySRRIP:
		return policies.NewSRRIP(), nil
	case PolicySDBP:
		return policies.NewSDBPConfig(cfg.SDBP), nil
	case PolicySHiP:
		return policies.NewSHiP(), nil
	case PolicyDIP:
		return policies.NewDIP(), nil
	case PolicyGHRP:
		p, err := core.NewICachePolicy(cfg.GHRP)
		if err != nil {
			return nil, err
		}
		l.ghrp = p
		return p, nil
	default:
		return nil, fmt.Errorf("frontend: unhandled policy %v", l.kind)
	}
}

func (l *lane) makeBTBPolicy(cfg Config) (cache.Policy, error) {
	switch l.kind {
	case PolicyLRU:
		return policies.NewLRU(), nil
	case PolicyRandom:
		return policies.NewRandom(cfg.RandomSeed + 1), nil
	case PolicyFIFO:
		return policies.NewFIFO(), nil
	case PolicySRRIP:
		return policies.NewSRRIP(), nil
	case PolicySDBP:
		return policies.NewSDBPConfig(cfg.SDBP), nil
	case PolicySHiP:
		return policies.NewSHiP(), nil
	case PolicyDIP:
		return policies.NewDIP(), nil
	case PolicyGHRP:
		// The BTB shares the I-cache's predictor and metadata (§III-E).
		return btb.NewGHRPPolicy(l.ghrp, uint64(cfg.ICache.BlockBytes))
	default:
		return nil, fmt.Errorf("frontend: unhandled policy %v", l.kind)
	}
}

// Engine is the trace-driven front-end simulator for one policy: a front
// driving a single lane.
type Engine struct {
	front *front
	lane  *lane
	lanes []*lane // the single lane, pre-sliced for stepRecord
}

// NewEngine builds a simulator for the given configuration and
// replacement policy (applied to both the I-cache and BTB). warmupLimit
// is the number of leading instructions excluded from statistics; use
// WarmupFor to derive it from a trace length per the paper's rule.
func NewEngine(cfg Config, kind PolicyKind, warmupLimit uint64) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f, err := newFront(cfg, warmupLimit)
	if err != nil {
		return nil, err
	}
	l, err := newLane(cfg, kind, f.warm)
	if err != nil {
		return nil, err
	}
	return &Engine{front: f, lane: l, lanes: []*lane{l}}, nil
}

// WarmupFor derives the warm-up instruction count for a trace of the
// given length under cfg: half the instructions, capped (§IV-C).
func (c Config) WarmupFor(totalInstructions uint64) uint64 {
	w := uint64(float64(totalInstructions) * c.WarmupFraction)
	if w > c.WarmupCap {
		w = c.WarmupCap
	}
	return w
}

// ICache exposes the simulated I-cache (for efficiency heat maps).
func (e *Engine) ICache() *cache.Cache { return e.lane.icache }

// BTB exposes the simulated BTB.
func (e *Engine) BTB() *btb.BTB { return e.lane.ibtb }

// GHRP returns the GHRP I-cache policy, or nil for other policies (and
// on a nil receiver).
func (e *Engine) GHRP() *core.ICachePolicy {
	if e == nil { // callers that load a cached Result have no engine
		return nil
	}
	return e.lane.ghrp
}

// BranchPredictor exposes the direction predictor.
func (e *Engine) BranchPredictor() *perceptron.Predictor { return e.front.bpred }

// ReturnStack exposes the return address stack.
func (e *Engine) ReturnStack() *RAS { return e.front.ras }

// IndirectPredictor exposes the indirect target predictor.
func (e *Engine) IndirectPredictor() *indirect.Predictor { return e.front.ind }

// Instructions returns total instructions processed so far.
func (e *Engine) Instructions() uint64 { return e.front.instrs }

// Process consumes one branch record: reconstruct the fetch group,
// access the I-cache per block, predict and train the direction
// predictor, access the BTB for taken branches, and manage speculative
// history.
func (e *Engine) Process(r trace.Record) {
	stepRecord(e.front, e.lanes, r)
}

// stepRecord advances the front and every lane by one branch record. The
// single-policy Engine and the multi-policy FanOut both funnel through
// it, so the two paths cannot drift apart. It runs once per record and
// must stay allocation-free (TestStepAllocFree pins the dynamic count;
// the hotalloc analyzer pins the constructs statically).
//
//ghrp:hotpath
func stepRecord(f *front, lanes []*lane, r trace.Record) {
	f.records++
	preWarm := f.warm

	// Fetch-group reconstruction: each distinct block is one I-cache
	// access whose PC is the first instruction fetched in that block.
	// Fetch-buffer coalescing drops consecutive fetch groups from the
	// same cache line (sequential fall-through past a not-taken branch,
	// or a short taken branch within the line): they read the fetch
	// buffer, not the I-cache. Without this, dense basic blocks would
	// count several I-cache accesses per line and streaming lines would
	// look "reused". The coalesced access list is policy-independent, so
	// it is computed once and applied to every lane.
	startPC := f.fetcher.PC()
	var n uint64
	f.spans, n = f.fetcher.NextSpans(r, f.spans[:0])
	f.accesses = f.accesses[:0]
	first := true
	for i := range f.spans {
		block := f.spans[i].Block
		if f.haveLast && block == f.lastBlock {
			continue
		}
		f.lastBlock, f.haveLast = block, true
		pc := block << f.blockShift
		if first {
			// A mid-block fetch begins at the branch target, not the
			// block base; signatures must see the real entry point.
			if startPC != 0 && startPC>>f.blockShift == block {
				pc = startPC
			} else if startPC == 0 {
				pc = r.PC
			}
			first = false
		}
		f.accesses = append(f.accesses, blockAccess{block: block, pc: pc})
	}
	for _, l := range lanes {
		for _, a := range f.accesses {
			l.access(a.block, a.pc, f.warm)
		}
	}
	f.instrs += n
	if !f.warm {
		f.counted += n
	}

	// Direction prediction for conditional branches; other transfers
	// contribute to path history only.
	if r.Type.Conditional() {
		o := f.bpred.Predict(r.PC)
		mispredicted := o.Taken != r.Taken
		f.bpred.Update(o, r.PC, r.Taken)
		if mispredicted && f.cfg.WrongPath != WrongPathOff {
			// Wrong-path fetch after a misprediction (§III-F): a few
			// sequential blocks from the not-executed path. The block
			// list is policy-independent; each lane takes the pollution
			// and (in recovery mode) restores its speculative history.
			wrongPC := r.Target
			if r.Taken {
				wrongPC = r.FallThrough(f.cfg.InstrBytes)
			}
			f.wrongBlocks = f.wrongBlocks[:0]
			base := wrongPC >> f.blockShift
			for i := 0; i < f.cfg.WrongPathDepth; i++ {
				f.wrongBlocks = append(f.wrongBlocks, base+uint64(i))
			}
			for _, l := range lanes {
				l.injectWrongPath(f.wrongBlocks, wrongPC, f.warm)
			}
		}
	} else {
		f.bpred.PushUnconditional(r.PC)
	}

	// BTB access for taken branches that use it.
	if r.Taken && r.Type.UsesBTB() {
		for _, l := range lanes {
			l.ibtb.Access(r.PC, r.Target)
		}
	}

	// Return address stack and indirect target prediction: calls push
	// their return address, returns pop and score it, and indirect
	// transfers consult the ITTAGE-style target predictor (the paper's
	// §VI future-work interaction).
	switch r.Type {
	case trace.DirectCall, trace.IndirectCall:
		f.ras.Push(r.FallThrough(f.cfg.InstrBytes))
	case trace.Return:
		f.ras.Pop(r.Target)
	}
	if r.Type == trace.IndirectCall || r.Type == trace.IndirectJump {
		o := f.ind.Predict(r.PC)
		f.ind.Update(o, r.PC, r.Target)
	}

	// Warm-up boundary: flip statistics on once crossed.
	if preWarm && f.instrs >= f.warmupLimit {
		f.warm = false
		for _, l := range lanes {
			l.icache.SetWarmup(false)
			l.ibtb.SetWarmup(false)
		}
		f.bpred.ResetStats()
		f.ras.ResetStats()
		f.ind.ResetStats()
	}
}

// access performs one I-cache access and mirrors the retired GHRP path
// history (right-path accesses commit immediately in a trace-driven
// simulation). With next-line prefetching enabled, a demand miss also
// installs the following block; prefetch fills do not count as demand
// traffic.
//
//ghrp:hotpath
func (l *lane) access(block, pc uint64, warm bool) {
	hit, _ := l.icache.AccessEx(cache.Access{Block: block, PC: pc})
	if l.ghrp != nil {
		l.ghrp.History().Commit(pc)
	}
	if l.pref == nil {
		return
	}
	if hit {
		if l.pref.take(block) && !warm {
			l.prefStats.Useful++
		}
	} else {
		next := block + 1
		if !l.icache.Lookup(next) {
			if !warm {
				l.icache.SetWarmup(true)
			}
			_, bypassed := l.icache.AccessEx(cache.Access{Block: next, PC: next << l.blockShift})
			if !warm {
				l.icache.SetWarmup(false)
				if !bypassed {
					l.prefStats.Issued++
				}
			}
			if !bypassed {
				l.pref.add(next)
			}
		}
	}
}

// injectWrongPath fetches the given wrong-path blocks into this lane's
// I-cache, polluting it and GHRP's speculative history; then the
// speculative history is restored from the retired history (§III-F),
// unless recovery is disabled for the ablation. Wrong-path accesses
// change cache and history state but are not demand misses; they are
// excluded from statistics.
func (l *lane) injectWrongPath(blocks []uint64, wrongPC uint64, warm bool) {
	if !warm {
		l.icache.SetWarmup(true)
	}
	for i, b := range blocks {
		pc := b << l.blockShift
		if i == 0 {
			pc = wrongPC
		}
		l.icache.Access(cache.Access{Block: b, PC: pc})
	}
	if !warm {
		l.icache.SetWarmup(false)
	}
	if l.ghrp != nil && l.recoverHist {
		l.ghrp.History().Recover()
	}
}

// Run processes a record slice and returns the result.
func (e *Engine) Run(recs []trace.Record) Result {
	for _, r := range recs {
		e.Process(r)
	}
	return e.Result()
}

// Result snapshots the current statistics.
func (e *Engine) Result() Result {
	return makeResult(e.front, e.lane)
}

// makeResult assembles one lane's Result from the shared front counters
// and the lane's structures.
func makeResult(f *front, l *lane) Result {
	return Result{
		Policy:            l.kind,
		TotalInstructions: f.instrs,
		CountedInstrs:     f.counted,
		Records:           f.records,
		ICache:            l.icache.Stats(),
		BTB:               l.ibtb.Stats(),
		Branch:            f.bpred.Stats(),
		RAS:               f.ras.Stats(),
		Indirect:          f.ind.Stats(),
		Prefetch:          l.prefStats,
	}
}

func shiftOf(v uint64) uint {
	s := uint(0)
	for ; v > 1; v >>= 1 {
		s++
	}
	return s
}
