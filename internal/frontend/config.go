// Package frontend implements the trace-driven front-end simulator of the
// paper's methodology (§IV): branch records are consumed in order, the
// instruction fetch stream is reconstructed between branch targets, each
// fetch block accesses the I-cache, taken branches access the BTB, a
// hashed perceptron predicts conditional directions, and GHRP's
// speculative path history is managed (with optional wrong-path pollution
// and recovery, §III-F). The simulator is not cycle accurate; the figure
// of merit is misses per 1000 instructions (MPKI) measured after warm-up.
package frontend

import (
	"fmt"
	"strings"

	"ghrpsim/internal/core"
	"ghrpsim/internal/perceptron"
	"ghrpsim/internal/policies"
)

// ICacheConfig is the instruction cache geometry.
type ICacheConfig struct {
	SizeBytes  int
	BlockBytes int
	Ways       int
}

// DefaultICache is the paper's primary configuration: 64KB, 8-way, 64B
// blocks (§V-A).
func DefaultICache() ICacheConfig {
	return ICacheConfig{SizeBytes: 64 * 1024, BlockBytes: 64, Ways: 8}
}

// Sets returns the set count.
func (c ICacheConfig) Sets() int {
	if c.BlockBytes == 0 || c.Ways == 0 {
		return 0
	}
	return c.SizeBytes / c.BlockBytes / c.Ways
}

// Blocks returns the total block frames.
func (c ICacheConfig) Blocks() int {
	if c.BlockBytes == 0 {
		return 0
	}
	return c.SizeBytes / c.BlockBytes
}

// Validate rejects impossible geometries.
func (c ICacheConfig) Validate() error {
	if c.SizeBytes <= 0 || c.BlockBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("frontend: icache %+v has non-positive fields", c)
	}
	sets := c.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("frontend: icache %+v yields %d sets (need power of two)", c, sets)
	}
	return nil
}

// String renders the geometry like "64KB/8-way/64B".
func (c ICacheConfig) String() string {
	return fmt.Sprintf("%dKB/%d-way/%dB", c.SizeBytes/1024, c.Ways, c.BlockBytes)
}

// BTBConfig is the branch target buffer geometry.
type BTBConfig struct {
	Entries int
	Ways    int
}

// DefaultBTB is the paper's 4,096-entry BTB modeled after the Samsung
// Mongoose, 4-way (§V-B, Fig. 10).
func DefaultBTB() BTBConfig { return BTBConfig{Entries: 4096, Ways: 4} }

// Sets returns the set count.
func (c BTBConfig) Sets() int {
	if c.Ways == 0 {
		return 0
	}
	return c.Entries / c.Ways
}

// Validate rejects impossible geometries.
func (c BTBConfig) Validate() error {
	if c.Entries <= 0 || c.Ways <= 0 {
		return fmt.Errorf("frontend: btb %+v has non-positive fields", c)
	}
	sets := c.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("frontend: btb %+v yields %d sets (need power of two)", c, sets)
	}
	return nil
}

// String renders the geometry like "4096-entry/4-way".
func (c BTBConfig) String() string {
	return fmt.Sprintf("%d-entry/%d-way", c.Entries, c.Ways)
}

// WrongPathMode controls modeling of wrong-path fetch after conditional
// mispredictions.
type WrongPathMode uint8

const (
	// WrongPathOff ignores wrong-path effects (the baseline trace-driven
	// methodology).
	WrongPathOff WrongPathMode = iota
	// WrongPathInject fetches a few wrong-path blocks after each
	// misprediction (polluting caches and speculative history) and then
	// recovers GHRP's speculative history from the retired history.
	WrongPathInject
	// WrongPathNoRecover injects pollution but never recovers the
	// speculative history — the ablation of §III-F's recovery mechanism.
	WrongPathNoRecover
)

// Config assembles a complete front-end configuration.
type Config struct {
	ICache     ICacheConfig
	BTB        BTBConfig
	InstrBytes uint64
	// WarmupFraction of total instructions warms structures without
	// counting statistics; WarmupCap bounds it (the paper: half the
	// trace, capped at 200M instructions).
	WarmupFraction float64
	WarmupCap      uint64
	// GHRP parameterizes the GHRP policy when selected.
	GHRP core.Config
	// SDBP parameterizes the modified SDBP policy when selected.
	SDBP policies.SDBPConfig
	// Branch parameterizes the hashed perceptron direction predictor.
	Branch perceptron.Config
	// WrongPath selects wrong-path modeling; WrongPathDepth is how many
	// sequential blocks are fetched down the wrong path.
	WrongPath      WrongPathMode
	WrongPathDepth int
	// RandomSeed seeds the Random replacement policy.
	RandomSeed uint64
	// NextLinePrefetch enables a next-line I-cache prefetcher: each
	// demand miss also brings in the following block. Prefetching is the
	// dominant theme of prior I-cache work the paper contrasts with
	// (§II-E); this option lets experiments study how it composes with
	// replacement policies.
	NextLinePrefetch bool
}

// DefaultConfig mirrors the paper's primary setup.
func DefaultConfig() Config {
	return Config{
		ICache:         DefaultICache(),
		BTB:            DefaultBTB(),
		InstrBytes:     4,
		WarmupFraction: 0.5,
		WarmupCap:      200_000_000,
		WrongPathDepth: 2,
		RandomSeed:     1,
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if err := c.ICache.Validate(); err != nil {
		return err
	}
	if err := c.BTB.Validate(); err != nil {
		return err
	}
	if c.InstrBytes == 0 || c.InstrBytes&(c.InstrBytes-1) != 0 {
		return fmt.Errorf("frontend: InstrBytes %d must be a power of two", c.InstrBytes)
	}
	if c.WarmupFraction < 0 || c.WarmupFraction >= 1 {
		return fmt.Errorf("frontend: WarmupFraction %v out of [0,1)", c.WarmupFraction)
	}
	if c.WrongPathDepth < 0 {
		return fmt.Errorf("frontend: negative WrongPathDepth")
	}
	return nil
}

// PolicyKind names a replacement policy for both I-cache and BTB.
type PolicyKind uint8

const (
	// PolicyLRU is least-recently-used, the baseline.
	PolicyLRU PolicyKind = iota
	// PolicyRandom evicts uniformly at random.
	PolicyRandom
	// PolicyFIFO evicts in insertion order.
	PolicyFIFO
	// PolicySRRIP is static re-reference interval prediction.
	PolicySRRIP
	// PolicySDBP is the modified sampling-based dead block predictor.
	PolicySDBP
	// PolicyGHRP is the paper's global history reuse predictor.
	PolicyGHRP
	// PolicySHiP is signature-based hit prediction (Wu et al.), the
	// other PC-based scheme the paper names in §II-A; included as an
	// extended baseline.
	PolicySHiP
	// PolicyDIP is dynamic insertion (LRU/BIP set dueling), an extended
	// thrash-resistance baseline.
	PolicyDIP

	numPolicies
)

// String names the policy as in the paper's figures.
func (k PolicyKind) String() string {
	switch k {
	case PolicyLRU:
		return "LRU"
	case PolicyRandom:
		return "Random"
	case PolicyFIFO:
		return "FIFO"
	case PolicySRRIP:
		return "SRRIP"
	case PolicySDBP:
		return "SDBP"
	case PolicyGHRP:
		return "GHRP"
	case PolicySHiP:
		return "SHiP"
	case PolicyDIP:
		return "DIP"
	default:
		return fmt.Sprintf("PolicyKind(%d)", uint8(k))
	}
}

// ParsePolicy resolves a case-insensitive policy name.
func ParsePolicy(name string) (PolicyKind, error) {
	for k := PolicyKind(0); k < numPolicies; k++ {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("frontend: unknown policy %q", name)
}

// PaperPolicies returns the five policies the paper evaluates, in its
// reporting order.
func PaperPolicies() []PolicyKind {
	return []PolicyKind{PolicyLRU, PolicyRandom, PolicySRRIP, PolicySDBP, PolicyGHRP}
}

// ExtendedPolicies returns the paper's five plus the extra baselines
// this library implements (FIFO, SHiP, DIP).
func ExtendedPolicies() []PolicyKind {
	return []PolicyKind{PolicyLRU, PolicyFIFO, PolicyRandom, PolicySRRIP, PolicyDIP, PolicySHiP, PolicySDBP, PolicyGHRP}
}
