package frontend

import (
	"sync/atomic"

	"ghrpsim/internal/btb"
	"ghrpsim/internal/cache"
)

// Chunked lane-major replay. The record-major fused step (stepRecord)
// sweeps all N specialized lane bodies once per record, so the host CPU
// alternates between N distinct instruction footprints tens of millions
// of times per second — the code-size cost of specialization turns into
// an instruction-cache thrash. The chunked path fixes the ratio:
// front.decide runs for a block of records first, serializing each
// record's lane-facing decisions into a decChunk, and then each lane
// replays the whole chunk in one burst. Every specialized body now runs
// for chunkRecords records per activation, and a lane's cache, BTB and
// policy tables stay hot across the burst.
//
// A chunk is exactly a reified sequence of stepDecisions, and each
// lane's chunk replay applies them through the same laneAccess /
// laneInject / btb.AccessWith calls in the same per-record order as
// applyStep, so chunked replay is bit-identical to the record-major
// path by construction. The checkpoint-parallel path (fanlog.go) ships
// these same chunks to worker goroutines.

// chunkRecords is the record capacity of one chunk: large enough to
// amortize the per-lane body switch and keep a lane's tables hot,
// small enough that a chunk (records + flattened accesses) stays well
// inside the L2 working set alongside two lanes' hot state.
const chunkRecords = 8192

// chunk record flags.
const (
	chunkWarm   = 1 << iota // ops run under warm-up statistics
	chunkInject             // wrong-path injection follows the accesses
	chunkBTB                // BTB probe for a taken branch
	chunkFlip               // warm-up boundary crossed after this record
)

// decRec is one record's serialized decisions. The I-cache access list
// lives flattened in the chunk's shared pool.
type decRec struct {
	accOff    uint32
	accLen    uint32
	flags     uint8
	wrongPC   uint64
	btbPC     uint64
	btbTarget uint64
}

// decChunk holds the decisions of up to chunkRecords records. push
// copies the access list out of the front's scratch, so a filled chunk
// is self-contained and safe to hand to another goroutine.
type decChunk struct {
	recs     []decRec
	accesses []blockAccess
	// refs counts the workers still due to replay this chunk on the
	// parallel path (fanlog.go); the serial path leaves it at zero.
	refs atomic.Int32
}

func newDecChunk() *decChunk {
	return &decChunk{
		recs: make([]decRec, 0, chunkRecords),
		// Fetch groups average one to two coalesced accesses per record.
		accesses: make([]blockAccess, 0, 2*chunkRecords),
	}
}

// push serializes one record's decisions into the chunk.
//
//ghrp:hotpath
func (ch *decChunk) push(d *stepDecisions) {
	var r decRec
	r.accOff = uint32(len(ch.accesses))
	r.accLen = uint32(len(d.accesses))
	//ghrplint:ignore hotalloc chunk buffers keep their capacity across resets; a grow can happen only the first few chunks of a run (access lists denser than the 2x-records presize), after which pushes are allocation-free — TestStreamingAllocsBounded pins the steady state
	ch.accesses = append(ch.accesses, d.accesses...)
	if d.warm {
		r.flags |= chunkWarm
	}
	if d.inject {
		r.flags |= chunkInject
		r.wrongPC = d.wrongPC
	}
	if d.btb {
		r.flags |= chunkBTB
		r.btbPC = d.btbPC
		r.btbTarget = d.btbTarget
	}
	if d.flip {
		r.flags |= chunkFlip
	}
	//ghrplint:ignore hotalloc recs is presized to chunkRecords and full() gates the chunk before this append can exceed it
	ch.recs = append(ch.recs, r)
}

func (ch *decChunk) full() bool  { return len(ch.recs) >= chunkRecords }
func (ch *decChunk) empty() bool { return len(ch.recs) == 0 }

func (ch *decChunk) reset() {
	ch.recs = ch.recs[:0]
	ch.accesses = ch.accesses[:0]
}

// replayChunk advances one lane through every record of a chunk,
// mirroring applyStep's per-record op order exactly: I-cache accesses,
// wrong-path injection, BTB probe, warm-up flip.
//
//ghrp:hotpath
func replayChunk[IP, BP cache.Policy](l *lane, ip IP, bp BP, ch *decChunk) {
	for i := range ch.recs {
		r := &ch.recs[i]
		warm := r.flags&chunkWarm != 0
		acc := ch.accesses[r.accOff : r.accOff+r.accLen]
		for j := range acc {
			laneAccess(l, ip, acc[j].block, acc[j].pc, warm)
		}
		if r.flags&chunkInject != 0 {
			laneInject(l, ip, r.wrongPC, warm)
		}
		if r.flags&chunkBTB != 0 {
			btb.AccessWith(&l.ibtb, bp, r.btbPC, r.btbTarget)
		}
		if r.flags&chunkFlip != 0 {
			l.icache.SetWarmup(false)
			l.ibtb.SetWarmup(false)
		}
	}
}
