package frontend

// RAS is a return address stack, the structure real front ends use to
// predict return targets (which is why returns do not occupy BTB entries
// in this model — §record.UsesBTB). It is a fixed-depth circular stack:
// overflow overwrites the oldest entry, underflow mispredicts, exactly
// like hardware.
type RAS struct {
	entries []uint64
	top     int // index of the next free slot
	depth   int // current valid depth (<= len(entries))
	stats   RASStats
}

// RASStats counts return-target prediction outcomes.
type RASStats struct {
	Pushes      uint64
	Pops        uint64
	Correct     uint64
	Mispredicts uint64
	Underflows  uint64
	Overflows   uint64
}

// Accuracy returns the fraction of correctly predicted return targets.
func (s RASStats) Accuracy() float64 {
	if s.Pops == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Pops)
}

// NewRAS returns a stack with the given capacity (16-64 in real cores).
func NewRAS(capacity int) *RAS {
	if capacity < 1 {
		capacity = 1
	}
	return &RAS{entries: make([]uint64, capacity)}
}

// Push records a call's return address.
func (r *RAS) Push(returnAddr uint64) {
	r.entries[r.top] = returnAddr
	r.top = (r.top + 1) % len(r.entries)
	if r.depth < len(r.entries) {
		r.depth++
	} else {
		r.stats.Overflows++
	}
	r.stats.Pushes++
}

// Pop predicts a return target and scores it against the actual target.
func (r *RAS) Pop(actual uint64) (predicted uint64, correct bool) {
	r.stats.Pops++
	if r.depth == 0 {
		r.stats.Underflows++
		r.stats.Mispredicts++
		return 0, false
	}
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	predicted = r.entries[r.top]
	if predicted == actual {
		r.stats.Correct++
		return predicted, true
	}
	r.stats.Mispredicts++
	return predicted, false
}

// Stats returns the accumulated counters.
func (r *RAS) Stats() RASStats { return r.stats }

// ResetStats clears statistics while keeping the stack contents.
func (r *RAS) ResetStats() { r.stats = RASStats{} }

// Reset clears everything.
func (r *RAS) Reset() {
	r.top, r.depth = 0, 0
	r.stats = RASStats{}
}
