// Package ghrpsim reproduces "Exploring Predictive Replacement Policies
// for Instruction Cache and Branch Target Buffer" (Ajorpaz, Garza,
// Jindal, Jiménez; ISCA 2018): Global History Reuse Prediction (GHRP), a
// dead-block replacement and bypass policy for the I-cache and BTB,
// together with the trace-driven front-end simulator, baseline policies
// (LRU, Random, FIFO, SRRIP, modified SDBP), a synthetic 662-workload
// suite standing in for the proprietary CBP-5 traces, and the experiment
// harness that regenerates every table and figure of the paper's
// evaluation.
//
// Quick start:
//
//	spec := ghrpsim.SuiteN(8)[0]
//	prog, _ := spec.Generate()
//	cfg := ghrpsim.DefaultConfig()
//	lru, _ := ghrpsim.SimulateProgram(cfg, ghrpsim.PolicyLRU, prog, 1, 500_000)
//	ghrp, _ := ghrpsim.SimulateProgram(cfg, ghrpsim.PolicyGHRP, prog, 1, 500_000)
//	fmt.Printf("LRU %.3f vs GHRP %.3f I-cache MPKI\n", lru.ICacheMPKI(), ghrp.ICacheMPKI())
//
// The package re-exports the library's composable pieces as type
// aliases, so external users can reach everything through this import
// while the implementation stays organized in internal packages.
package ghrpsim

import (
	"context"
	"io"
	"time"

	"ghrpsim/internal/core"
	"ghrpsim/internal/frontend"
	"ghrpsim/internal/obs"
	"ghrpsim/internal/resultcache"
	"ghrpsim/internal/sim"
	"ghrpsim/internal/trace"
	"ghrpsim/internal/workload"
)

// --- Front-end simulator -------------------------------------------------

// Config is the complete front-end configuration: I-cache and BTB
// geometry, warm-up policy, GHRP and SDBP parameters, branch predictor
// setup, and wrong-path modeling.
type Config = frontend.Config

// ICacheConfig is the instruction cache geometry.
type ICacheConfig = frontend.ICacheConfig

// BTBConfig is the branch target buffer geometry.
type BTBConfig = frontend.BTBConfig

// Result is one simulation's statistics; see ICacheMPKI, BTBMPKI and
// BranchMPKI.
type Result = frontend.Result

// Engine is the trace-driven front-end simulator.
type Engine = frontend.Engine

// PolicyKind names a replacement policy.
type PolicyKind = frontend.PolicyKind

// Replacement policies. PaperPolicies returns the five the paper
// evaluates.
const (
	PolicyLRU    = frontend.PolicyLRU
	PolicyRandom = frontend.PolicyRandom
	PolicyFIFO   = frontend.PolicyFIFO
	PolicySRRIP  = frontend.PolicySRRIP
	PolicySDBP   = frontend.PolicySDBP
	PolicyGHRP   = frontend.PolicyGHRP
)

// DefaultConfig mirrors the paper's primary setup: 64KB/8-way/64B
// I-cache, 4096-entry/4-way BTB, warm-up on the first half of the trace.
func DefaultConfig() Config { return frontend.DefaultConfig() }

// ParsePolicy resolves a case-insensitive policy name ("lru", "ghrp"...).
func ParsePolicy(name string) (PolicyKind, error) { return frontend.ParsePolicy(name) }

// PaperPolicies returns LRU, Random, SRRIP, SDBP, GHRP in the paper's
// reporting order.
func PaperPolicies() []PolicyKind { return frontend.PaperPolicies() }

// NewEngine builds a simulator for one policy; warmupLimit instructions
// are excluded from statistics.
func NewEngine(cfg Config, kind PolicyKind, warmupLimit uint64) (*Engine, error) {
	return frontend.NewEngine(cfg, kind, warmupLimit)
}

// SimulateRecords replays a branch-record stream under one policy.
func SimulateRecords(cfg Config, kind PolicyKind, recs []Record) (Result, error) {
	return frontend.SimulateRecords(cfg, kind, recs)
}

// SimulateProgram executes a synthetic program for target instructions
// under one policy.
func SimulateProgram(cfg Config, kind PolicyKind, prog *Program, seed, target uint64) (Result, error) {
	return frontend.SimulateProgram(cfg, kind, prog, seed, target)
}

// StreamOptions tunes a streaming replay: an optional progress callback
// invoked every ProgressEvery records, which may abort (e.g. for
// cancellation) by returning an error.
type StreamOptions = frontend.StreamOptions

// SimulateProgramStream streams a program through an engine with an
// explicit warm-up limit and optional progress callbacks; pair with
// CountProgram to match the buffered SimulateRecords path bit for bit.
func SimulateProgramStream(cfg Config, kind PolicyKind, prog *Program, seed, target, warmupLimit uint64, opts StreamOptions) (Result, error) {
	return frontend.SimulateProgramStream(cfg, kind, prog, seed, target, warmupLimit, opts)
}

// SimulateFanOut executes a program once and replays it under every
// given policy in lockstep; each Result is bit-identical to the
// corresponding SimulateProgramStream call, at one execution's cost.
func SimulateFanOut(cfg Config, kinds []PolicyKind, prog *Program, seed, target, warmupLimit uint64, opts StreamOptions) ([]Result, error) {
	return frontend.SimulateFanOut(cfg, kinds, prog, seed, target, warmupLimit, opts)
}

// CountProgram streams a program through a fetch reconstructor without
// buffering, returning total instruction and record counts.
func CountProgram(cfg Config, prog *Program, seed, target uint64, opts StreamOptions) (instrs, records uint64, err error) {
	return frontend.CountProgram(cfg, prog, seed, target, opts)
}

// GenerateRecords executes a program once, returning its record stream
// so several policies can replay identical traces.
func GenerateRecords(prog *Program, seed, target uint64) ([]Record, error) {
	return frontend.GenerateRecords(prog, seed, target)
}

// --- GHRP (the paper's contribution) -------------------------------------

// GHRPConfig parameterizes the Global History Reuse Predictor: table
// geometry, history formula, thresholds, aggregation, and training mode.
// The zero value is the tuned paper configuration.
type GHRPConfig = core.Config

// GHRPPredictor is the prediction-table machinery shared by the I-cache
// policy and the BTB adapter.
type GHRPPredictor = core.Predictor

// GHRPHistory is the speculative/retired path history register pair.
type GHRPHistory = core.History

// GHRPStorage describes a GHRP deployment's SRAM budget (Table I).
type GHRPStorage = core.Storage

// --- Workloads ------------------------------------------------------------

// Record is one branch execution in a trace.
type Record = trace.Record

// Category labels a workload with its CBP5-style suite class.
type Category = trace.Category

// Profile parameterizes synthetic program generation.
type Profile = workload.Profile

// Program is a synthesized control-flow graph executed to emit traces.
type Program = workload.Program

// Spec is one suite workload (profile + instruction budget).
type Spec = workload.Spec

// SuiteSize is the number of workloads in the full suite (662, matching
// the paper's CBP-5 count).
const SuiteSize = workload.SuiteSize

// Suite returns all 662 workload specifications.
func Suite() []Spec { return workload.Suite() }

// SuiteN returns an evenly spaced subsample of n workloads.
func SuiteN(n int) []Spec { return workload.SuiteN(n) }

// FindWorkload returns the suite workload with the given name.
func FindWorkload(name string) (Spec, error) { return workload.Find(name) }

// GenerateProgram synthesizes a program from a profile.
func GenerateProgram(p Profile) (*Program, error) { return workload.Generate(p) }

// --- Experiment harness ----------------------------------------------------

// Options configures a suite run across policies.
type Options = sim.Options

// Measurements is a suite run's outcome: per-policy MPKI vectors.
type Measurements = sim.Measurements

// Structure selects I-cache or BTB results in experiment reports.
type Structure = sim.Structure

// Experiment structure selectors.
const (
	ICache = sim.ICache
	BTB    = sim.BTB
)

// RunEvent is one progress observation from a suite run.
type RunEvent = obs.Event

// RunObserver consumes live progress events; attach one via
// Options.Observer. Observers are invoked concurrently.
type RunObserver = obs.Observer

// RunStats aggregates a run's wall time and per-workload / per-policy
// throughput; available as Measurements.Stats.
type RunStats = obs.RunStats

// RunEventKind distinguishes run progress events.
type RunEventKind = obs.EventKind

// Run progress event kinds; see RunEvent.
const (
	RunStart          = obs.RunStart
	RunWorkloadStart  = obs.WorkloadStart
	RunTick           = obs.Tick
	RunPolicyDone     = obs.PolicyDone
	RunWorkloadDone   = obs.WorkloadDone
	RunWorkloadFailed = obs.WorkloadFailed
	RunDone           = obs.RunDone
	RunPolicyCached   = obs.PolicyCached
)

// Multi fans each run event out to every non-nil observer.
func Multi(observers ...RunObserver) RunObserver { return obs.Multi(observers...) }

// ExecSeedZero requests literal execution seed 0 in Options.ExecSeed
// (whose zero value means "unset" and defaults to seed 1).
const ExecSeedZero = sim.ExecSeedZero

// NewRunProgress returns a RunObserver that writes rate-limited progress
// lines to w (e.g. os.Stderr).
func NewRunProgress(w io.Writer, interval time.Duration) RunObserver {
	return obs.NewProgress(w, interval)
}

// ResultCache is the content-addressed on-disk result cache: attach one
// via Options.Cache so repeat runs, sweeps and ablations skip
// already-simulated (workload, policy, config) cells.
type ResultCache = resultcache.Cache

// ResultCacheKey is one cache entry's content-addressed key.
type ResultCacheKey = resultcache.Key

// OpenResultCache opens (creating if needed) a result cache directory.
func OpenResultCache(dir string) (*ResultCache, error) { return resultcache.Open(dir) }

// ResultCacheKeyFor computes the content-addressed key for one
// (workload, config, policy, seed, budget) simulation cell.
func ResultCacheKeyFor(spec Spec, cfg Config, kind PolicyKind, execSeed, target uint64) (ResultCacheKey, error) {
	return resultcache.KeyFor(spec, cfg, kind, execSeed, target)
}

// Run simulates a workload suite across policies in parallel.
func Run(opts Options) (*Measurements, error) { return sim.Run(opts) }

// RunContext is Run with cooperative cancellation: the run streams each
// workload per policy, aborts promptly when ctx is cancelled, and
// aggregates every workload failure into the returned error.
func RunContext(ctx context.Context, opts Options) (*Measurements, error) {
	return sim.RunContext(ctx, opts)
}
